// Package metrics is the platform-wide measurement substrate: a
// concurrency-safe registry of named counters, gauges, and fixed-bucket
// histograms that every layer of the simulated stack (hypervisor,
// memory, message bus, snapshot store, platforms, cluster) reports
// into. The paper's argument is quantitative — Figures 6-12 decompose
// invocation latency and memory sharing — and this package gives every
// experiment an aggregate, queryable view of those quantities:
// snapshot restores, JIT hits, CoW faults, queue dwell, placement
// decisions.
//
// Timestamps are virtual (internal/vclock), so a metrics snapshot is a
// pure function of the workload. Percentile math reuses
// internal/stats.Percentile over retained raw samples, so histogram
// quantiles are exact up to the sample window.
//
// Instruments are nil-safe: every method works on a nil receiver as a
// no-op, and a nil *Registry hands out nil instruments. Components can
// therefore record unconditionally and stay zero-cost when a host is
// built without a registry.
//
// The registry's lookup path is two-level. Steady-state lookups hit a
// frozen copy-on-write read index: one atomic pointer load plus a map
// access, no lock traffic at all — instruments are created once and
// live forever, which is exactly the read-mostly shape that layout
// serves. Creates hash the instrument name (FNV-1a) onto independently
// locked stripes and then republish the index, so concurrent first-use
// from many nodes of a simulated fleet does not serialize on one
// mutex. Sharding is invisible to exports — Snapshot gathers every
// stripe and sorts by name, so the text and JSON dumps are
// byte-identical to a single-stripe registry fed the same workload
// (the golden tests pin this down, and NewRegistryShards(1) keeps that
// layout available).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/vclock"
)

// UnitDuration marks a histogram whose observations are virtual-time
// durations in nanoseconds; exporters render them as time.Duration.
const UnitDuration = "ns"

// maxSamples bounds the raw-sample window a histogram retains for
// exact percentiles. Past the bound the window wraps (a deterministic
// ring), so quantiles describe the most recent maxSamples
// observations.
const maxSamples = 1 << 16

// DefaultLatencyBuckets are the fixed upper bounds (in nanoseconds)
// used by duration histograms, spanning the paper's measured range:
// tens of microseconds (warm isolate starts) to seconds (OpenWhisk
// cold starts and installs).
func DefaultLatencyBuckets() []float64 {
	return []float64{
		float64(100 * time.Microsecond),
		float64(300 * time.Microsecond),
		float64(1 * time.Millisecond),
		float64(3 * time.Millisecond),
		float64(10 * time.Millisecond),
		float64(30 * time.Millisecond),
		float64(100 * time.Millisecond),
		float64(300 * time.Millisecond),
		float64(1 * time.Second),
		float64(3 * time.Second),
		float64(10 * time.Second),
	}
}

// DefaultShards is the stripe count of NewRegistry. 32 stripes keep
// lock cache lines apart for fleets of dozens of nodes while costing
// ~3 KiB of empty maps on a single-host registry.
const DefaultShards = 32

// Registry is a concurrency-safe collection of named instruments.
// Instruments are created on first use and live for the registry's
// lifetime. The zero value is not usable; call NewRegistry.
type Registry struct {
	clockMu sync.RWMutex
	clock   *vclock.Clock
	shards  []regShard
	mask    uint32

	// Frozen read indexes. Instruments are created once and live
	// forever, so the common lookup is a pure read: one atomic pointer
	// load and a map access, no lock round-trip. Creates go through the
	// shards and then republish the index (rebuilds are serialized by
	// rebuildMu and gather every shard under its lock, so the last
	// published index always contains every completed create).
	rebuildMu sync.Mutex
	readC     atomic.Pointer[map[string]*Counter]
	readG     atomic.Pointer[map[string]*Gauge]
	readH     atomic.Pointer[map[string]*Histogram]

	// card is the cardinality governor (cardinality.go); its zero
	// value leaves every family unbounded.
	card cardinality
}

// regShard is one independently locked stripe of the name space. The
// pad keeps neighboring stripes' mutexes off one cache line.
type regShard struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	_          [16]byte // sync.RWMutex (24) + 3 map headers (24) + 16 = one 64-byte line
}

// NewRegistry returns an empty registry with DefaultShards stripes.
func NewRegistry() *Registry { return NewRegistryShards(DefaultShards) }

// NewRegistryShards returns an empty registry striped over n shards
// (rounded up to a power of two; n <= 1 yields a single-stripe
// registry, the layout the golden determinism tests compare the
// default against). Shard count never changes observable behavior —
// only lock spread.
func NewRegistryShards(n int) *Registry {
	if n < 1 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	r := &Registry{shards: make([]regShard, pow), mask: uint32(pow - 1)}
	for i := range r.shards {
		s := &r.shards[i]
		s.counters = make(map[string]*Counter)
		s.gauges = make(map[string]*Gauge)
		s.histograms = make(map[string]*Histogram)
	}
	return r
}

// Shards reports the registry's stripe count.
func (r *Registry) Shards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// shard maps an instrument name onto its stripe (FNV-1a).
func (r *Registry) shard(name string) *regShard {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &r.shards[h&r.mask]
}

// SetClock attaches a virtual clock; snapshots are stamped with its
// current time. Safe to call at any point (including never).
func (r *Registry) SetClock(c *vclock.Clock) {
	if r == nil {
		return
	}
	r.clockMu.Lock()
	r.clock = c
	r.clockMu.Unlock()
}

// Name builds a labeled metric name, e.g.
// Name("cluster_node_invocations_total", "node", "node-01") =>
// `cluster_node_invocations_total{node="node-01"}`. Label pairs are
// sorted by key so the same label set always yields the same name.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %s: %v", base, kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns the named counter, creating it on first use. The
// steady-state path is lock-free: a hit in the frozen read index costs
// one atomic load and one map lookup.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if m := r.readC.Load(); m != nil {
		if c := (*m)[name]; c != nil {
			return c
		}
	}
	return r.counterSlow(name)
}

func (r *Registry) counterSlow(name string) *Counter {
	s := r.shard(name)
	s.mu.Lock()
	c := s.counters[name]
	if c != nil {
		// Created by a racing goroutine whose index republish is still
		// in flight; that republish will surface it.
		s.mu.Unlock()
		return c
	}
	fam, redirect := r.admitSeries(name)
	if !redirect {
		c = &Counter{name: name}
		s.counters[name] = c
		s.mu.Unlock()
		r.republishCounters()
		return c
	}
	s.mu.Unlock()
	// Family over budget: alias this name onto the shared overflow
	// series (created outside the shard lock — it may hash anywhere),
	// so repeat lookups still hit the read index.
	oc := r.Counter(OverflowName(fam))
	s.mu.Lock()
	if c := s.counters[name]; c != nil {
		s.mu.Unlock()
		return c
	}
	s.counters[name] = oc
	s.mu.Unlock()
	r.noteOverflow(fam)
	r.republishCounters()
	return oc
}

func (r *Registry) republishCounters() {
	r.rebuildMu.Lock()
	defer r.rebuildMu.Unlock()
	m := make(map[string]*Counter)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, v := range s.counters {
			m[k] = v
		}
		s.mu.RUnlock()
	}
	r.readC.Store(&m)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if m := r.readG.Load(); m != nil {
		if g := (*m)[name]; g != nil {
			return g
		}
	}
	return r.gaugeSlow(name)
}

func (r *Registry) gaugeSlow(name string) *Gauge {
	s := r.shard(name)
	s.mu.Lock()
	g := s.gauges[name]
	if g != nil {
		s.mu.Unlock()
		return g
	}
	fam, redirect := r.admitSeries(name)
	if !redirect {
		g = &Gauge{name: name}
		s.gauges[name] = g
		s.mu.Unlock()
		r.republishGauges()
		return g
	}
	s.mu.Unlock()
	og := r.Gauge(OverflowName(fam))
	s.mu.Lock()
	if g := s.gauges[name]; g != nil {
		s.mu.Unlock()
		return g
	}
	s.gauges[name] = og
	s.mu.Unlock()
	r.noteOverflow(fam)
	r.republishGauges()
	return og
}

func (r *Registry) republishGauges() {
	r.rebuildMu.Lock()
	defer r.rebuildMu.Unlock()
	m := make(map[string]*Gauge)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, v := range s.gauges {
			m[k] = v
		}
		s.mu.RUnlock()
	}
	r.readG.Store(&m)
}

// Histogram returns the named duration histogram (default latency
// buckets, nanosecond unit), creating it on first use. A hit in the
// frozen read index returns before the default buckets are even
// materialized, keeping repeat lookups allocation-free.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if m := r.readH.Load(); m != nil {
		if h := (*m)[name]; h != nil {
			return h
		}
	}
	return r.HistogramWith(name, UnitDuration, DefaultLatencyBuckets())
}

// HistogramWith returns the named histogram, creating it with the
// given unit and fixed bucket upper bounds on first use. Bounds must
// be ascending; an implicit +Inf bucket is appended. If the histogram
// already exists the unit and bounds arguments are ignored.
func (r *Registry) HistogramWith(name, unit string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if m := r.readH.Load(); m != nil {
		if h := (*m)[name]; h != nil {
			return h
		}
	}
	s := r.shard(name)
	s.mu.Lock()
	if h := s.histograms[name]; h != nil {
		s.mu.Unlock()
		return h
	}
	s.mu.Unlock()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	s.mu.Lock()
	h := s.histograms[name]
	if h != nil {
		s.mu.Unlock()
		return h
	}
	fam, redirect := r.admitSeries(name)
	if !redirect {
		h = &Histogram{
			name:   name,
			unit:   unit,
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		s.histograms[name] = h
		s.mu.Unlock()
		r.republishHistograms()
		return h
	}
	s.mu.Unlock()
	// The overflow histogram inherits this create's unit and bounds —
	// families share a shape, so the first redirected shape wins.
	oh := r.HistogramWith(OverflowName(fam), unit, bounds)
	s.mu.Lock()
	if h := s.histograms[name]; h != nil {
		s.mu.Unlock()
		return h
	}
	s.histograms[name] = oh
	s.mu.Unlock()
	r.noteOverflow(fam)
	r.republishHistograms()
	return oh
}

func (r *Registry) republishHistograms() {
	r.rebuildMu.Lock()
	defer r.rebuildMu.Unlock()
	m := make(map[string]*Histogram)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, v := range s.histograms {
			m[k] = v
		}
		s.mu.RUnlock()
	}
	r.readH.Store(&m)
}

// Counter is a monotonically increasing count. Safe for concurrent
// use; all methods are no-ops on a nil receiver.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; counters never decrease).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("metrics: counter %s decremented by %d", c.name, n))
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depth, live VMs,
// bytes in use). Safe for concurrent use; no-ops on a nil receiver.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Exemplar ties one bucket of a histogram to a concrete trace: the
// most recent (on the virtual clock) observation that landed in the
// bucket while a trace was in scope. Exports surface it so a p99 in a
// dump links to a journal trace instead of an anonymous number.
type Exemplar struct {
	Trace uint64        // events.TraceID of the observing request
	Value float64       // the observed value
	TS    time.Duration // virtual time of the observation
}

// Histogram accumulates observations into fixed buckets and keeps a
// bounded window of raw samples for exact percentiles. Safe for
// concurrent use; no-ops on a nil receiver.
type Histogram struct {
	name   string
	unit   string
	bounds []float64 // ascending upper bounds; +Inf implicit last

	mu        sync.Mutex
	counts    []uint64 // len(bounds)+1
	count     uint64
	sum       float64
	min       float64
	max       float64
	samples   []float64  // ring of the most recent maxSamples observations
	next      int        // ring cursor
	exemplars []Exemplar // lazily allocated, len(bounds)+1; zero Trace = empty slot
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
}

// observeLocked records v and returns the bucket index it landed in.
func (h *Histogram) observeLocked(v float64) int {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % maxSamples
	}
	return i
}

// ObserveExemplar records one value and, when trace is nonzero,
// captures it as the bucket's exemplar. Capture is last-writer-wins on
// the virtual clock (ties go to the later call), so same-seed runs pin
// identical exemplars regardless of goroutine interleaving at equal
// virtual times only when their arrival order is itself deterministic —
// which the simulator's sequential per-trace pipelines guarantee.
func (h *Histogram) ObserveExemplar(v float64, trace uint64, ts time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := h.observeLocked(v)
	if trace == 0 {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.bounds)+1)
	}
	if ex := &h.exemplars[i]; ex.Trace == 0 || ts >= ex.TS {
		*ex = Exemplar{Trace: trace, Value: v, TS: ts}
	}
}

// ObserveDuration records a virtual-time duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// ObserveDurationExemplar records a virtual-time duration with an
// exemplar trace (see ObserveExemplar).
func (h *Histogram) ObserveDurationExemplar(d time.Duration, trace uint64, ts time.Duration) {
	h.ObserveExemplar(float64(d), trace, ts)
}

// Exemplars returns a copy of the per-bucket exemplar slots
// (len(bounds)+1; a zero Trace marks an empty slot). Nil when no
// exemplar was ever captured.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	return append([]Exemplar(nil), h.exemplars...)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Percentile returns the p-th percentile (0-100) over the retained
// sample window, computed with internal/stats.Percentile.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return stats.Percentile(h.samples, p)
}

// snapshotTime returns the registry's virtual time, or 0 without a
// clock.
func (r *Registry) snapshotTime() time.Duration {
	r.clockMu.RLock()
	defer r.clockMu.RUnlock()
	if r.clock == nil {
		return 0
	}
	return r.clock.Now()
}
