// Package metrics is the platform-wide measurement substrate: a
// concurrency-safe registry of named counters, gauges, and fixed-bucket
// histograms that every layer of the simulated stack (hypervisor,
// memory, message bus, snapshot store, platforms, cluster) reports
// into. The paper's argument is quantitative — Figures 6-12 decompose
// invocation latency and memory sharing — and this package gives every
// experiment an aggregate, queryable view of those quantities:
// snapshot restores, JIT hits, CoW faults, queue dwell, placement
// decisions.
//
// Timestamps are virtual (internal/vclock), so a metrics snapshot is a
// pure function of the workload. Percentile math reuses
// internal/stats.Percentile over retained raw samples, so histogram
// quantiles are exact up to the sample window.
//
// Instruments are nil-safe: every method works on a nil receiver as a
// no-op, and a nil *Registry hands out nil instruments. Components can
// therefore record unconditionally and stay zero-cost when a host is
// built without a registry.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/vclock"
)

// UnitDuration marks a histogram whose observations are virtual-time
// durations in nanoseconds; exporters render them as time.Duration.
const UnitDuration = "ns"

// maxSamples bounds the raw-sample window a histogram retains for
// exact percentiles. Past the bound the window wraps (a deterministic
// ring), so quantiles describe the most recent maxSamples
// observations.
const maxSamples = 1 << 16

// DefaultLatencyBuckets are the fixed upper bounds (in nanoseconds)
// used by duration histograms, spanning the paper's measured range:
// tens of microseconds (warm isolate starts) to seconds (OpenWhisk
// cold starts and installs).
func DefaultLatencyBuckets() []float64 {
	return []float64{
		float64(100 * time.Microsecond),
		float64(300 * time.Microsecond),
		float64(1 * time.Millisecond),
		float64(3 * time.Millisecond),
		float64(10 * time.Millisecond),
		float64(30 * time.Millisecond),
		float64(100 * time.Millisecond),
		float64(300 * time.Millisecond),
		float64(1 * time.Second),
		float64(3 * time.Second),
		float64(10 * time.Second),
	}
}

// Registry is a concurrency-safe collection of named instruments.
// Instruments are created on first use and live for the registry's
// lifetime. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	clock      *vclock.Clock
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// SetClock attaches a virtual clock; snapshots are stamped with its
// current time. Safe to call at any point (including never).
func (r *Registry) SetClock(c *vclock.Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// Name builds a labeled metric name, e.g.
// Name("cluster_node_invocations_total", "node", "node-01") =>
// `cluster_node_invocations_total{node="node-01"}`. Label pairs are
// sorted by key so the same label set always yields the same name.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %s: %v", base, kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram (default latency
// buckets, nanosecond unit), creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, UnitDuration, DefaultLatencyBuckets())
}

// HistogramWith returns the named histogram, creating it with the
// given unit and fixed bucket upper bounds on first use. Bounds must
// be ascending; an implicit +Inf bucket is appended. If the histogram
// already exists the unit and bounds arguments are ignored.
func (r *Registry) HistogramWith(name, unit string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{
			name:   name,
			unit:   unit,
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing count. Safe for concurrent
// use; all methods are no-ops on a nil receiver.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; counters never decrease).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("metrics: counter %s decremented by %d", c.name, n))
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depth, live VMs,
// bytes in use). Safe for concurrent use; no-ops on a nil receiver.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets and keeps a
// bounded window of raw samples for exact percentiles. Safe for
// concurrent use; no-ops on a nil receiver.
type Histogram struct {
	name   string
	unit   string
	bounds []float64 // ascending upper bounds; +Inf implicit last

	mu      sync.Mutex
	counts  []uint64 // len(bounds)+1
	count   uint64
	sum     float64
	min     float64
	max     float64
	samples []float64 // ring of the most recent maxSamples observations
	next    int       // ring cursor
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % maxSamples
	}
}

// ObserveDuration records a virtual-time duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Percentile returns the p-th percentile (0-100) over the retained
// sample window, computed with internal/stats.Percentile.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return stats.Percentile(h.samples, p)
}

// snapshotTime returns the registry's virtual time, or 0 without a
// clock.
func (r *Registry) snapshotTime() time.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.clock == nil {
		return 0
	}
	return r.clock.Now()
}
