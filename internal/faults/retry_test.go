package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

var errBoom = errors.New("boom")

// failN returns an op that fails n times, then succeeds, charging cost
// per attempt.
func failN(clock *vclock.Clock, n int, cost time.Duration) func() error {
	calls := 0
	return func() error {
		clock.Advance(cost)
		calls++
		if calls <= n {
			return fmt.Errorf("attempt %d: %w", calls, errBoom)
		}
		return nil
	}
}

func testPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Multiplier:  2,
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRetrier(testPolicy(), reg)
	clock := vclock.New()
	if err := r.Do(clock, failN(clock, 2, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("retries_total").Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	// 3 attempts x 1ms, backoffs 2ms + 4ms (no jitter).
	if clock.Now() != 9*time.Millisecond {
		t.Fatalf("clock = %v, want 9ms", clock.Now())
	}
}

func TestRetryExhaustion(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRetrier(testPolicy(), reg)
	clock := vclock.New()
	err := r.Do(clock, failN(clock, 100, time.Millisecond))
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped errBoom", err)
	}
	if got := reg.Counter("retry_exhausted_total").Value(); got != 1 {
		t.Fatalf("exhausted = %d", got)
	}
	if got := reg.Counter("retries_total").Value(); got != 3 {
		t.Fatalf("retries = %d, want 3 (4 attempts)", got)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	pol := testPolicy()
	pol.Permanent = func(err error) bool { return errors.Is(err, errBoom) }
	r := NewRetrier(pol, metrics.NewRegistry())
	clock := vclock.New()
	calls := 0
	err := r.Do(clock, func() error { calls++; return errBoom })
	if err != errBoom || calls != 1 {
		t.Fatalf("err = %v after %d calls, want errBoom after 1", err, calls)
	}
}

func TestAttemptTimeoutDiscardsSlowSuccess(t *testing.T) {
	pol := testPolicy()
	pol.AttemptTimeout = 10 * time.Millisecond
	reg := metrics.NewRegistry()
	r := NewRetrier(pol, reg)
	clock := vclock.New()
	discarded := 0
	slowOnce := true
	err := r.DoWithDiscard(clock, func() error {
		if slowOnce {
			slowOnce = false
			clock.Advance(30 * time.Millisecond) // a latency spike
			return nil                           // ...but "succeeded"
		}
		clock.Advance(time.Millisecond)
		return nil
	}, func() { discarded++ })
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 1 {
		t.Fatalf("discarded = %d, want 1", discarded)
	}
	if got := reg.Counter("retry_attempt_timeouts_total").Value(); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
}

func TestBudgetCutsRetriesShort(t *testing.T) {
	pol := testPolicy()
	pol.Budget = 5 * time.Millisecond
	r := NewRetrier(pol, metrics.NewRegistry())
	clock := vclock.New()
	// Each attempt costs 2ms; after two attempts (4ms) the 4ms backoff
	// would overrun the 5ms budget.
	err := r.Do(clock, failN(clock, 100, 2*time.Millisecond))
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
}

func TestJitterIsDeterministic(t *testing.T) {
	pol := testPolicy()
	pol.Jitter = 0.25
	pol.Seed = 99
	run := func() time.Duration {
		r := NewRetrier(pol, metrics.NewRegistry())
		clock := vclock.New()
		_ = r.Do(clock, failN(clock, 100, time.Millisecond))
		return clock.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered retry timing diverged: %v vs %v", a, b)
	}
}

func TestDisabledRetrierRunsOnce(t *testing.T) {
	var r *Retrier
	calls := 0
	if err := r.Do(vclock.New(), func() error { calls++; return errBoom }); err != errBoom || calls != 1 {
		t.Fatalf("nil retrier: err=%v calls=%d", err, calls)
	}
	r = NewRetrier(RetryPolicy{}, nil)
	calls = 0
	if err := r.Do(vclock.New(), func() error { calls++; return errBoom }); err != errBoom || calls != 1 {
		t.Fatalf("zero-policy retrier: err=%v calls=%d", err, calls)
	}
	if r.Enabled() {
		t.Fatal("zero policy reports enabled")
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(&Fault{Site: SiteVMMRestore, Kind: KindError}) {
		t.Fatal("injected fault not transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", ErrAttemptTimeout)) {
		t.Fatal("timeout not transient")
	}
	if IsTransient(errBoom) {
		t.Fatal("arbitrary error transient")
	}
}
