package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// schedule replays n draws at a site and records which operations
// faulted with what.
func schedule(p *Plane, site string, n int, clock *vclock.Clock) []string {
	var out []string
	for i := 0; i < n; i++ {
		err := p.Inject(site, clock)
		switch {
		case err == nil:
			out = append(out, "ok")
		default:
			var f *Fault
			if !errors.As(err, &f) {
				out = append(out, "?")
				continue
			}
			out = append(out, string(f.Kind))
		}
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	prof := Profile{ErrorRate: 0.05, LatencyRate: 0.05, CorruptionRate: 0.05, CrashRate: 0.05}
	a, b := NewPlane(42), NewPlane(42)
	a.SetProfile(SiteVMMRestore, prof)
	b.SetProfile(SiteVMMRestore, prof)
	sa := schedule(a, SiteVMMRestore, 500, vclock.New())
	sb := schedule(b, SiteVMMRestore, 500, vclock.New())
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("draw %d diverged: %s vs %s", i, sa[i], sb[i])
		}
	}
	faulted := 0
	for _, s := range sa {
		if s != "ok" {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("0 faults at a 20% combined rate over 500 draws")
	}
	// A different seed must produce a different schedule.
	c := NewPlane(43)
	c.SetProfile(SiteVMMRestore, prof)
	sc := schedule(c, SiteVMMRestore, 500, vclock.New())
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestLatencyFaultChargesClock(t *testing.T) {
	p := NewPlane(1)
	p.SetProfile(SiteRemoteFetch, Profile{LatencyRate: 1, LatencySpike: 40 * time.Millisecond})
	clock := vclock.New()
	if err := p.Inject(SiteRemoteFetch, clock); err != nil {
		t.Fatalf("latency fault returned error %v", err)
	}
	if clock.Now() != 40*time.Millisecond {
		t.Fatalf("clock = %v, want 40ms", clock.Now())
	}
	// A nil clock is counted but uncharged, never a panic.
	if err := p.Inject(SiteRemoteFetch, nil); err != nil {
		t.Fatalf("nil-clock latency fault returned %v", err)
	}
}

func TestErrInjectedMatchesThroughWrapping(t *testing.T) {
	p := NewPlane(1)
	p.SetProfile(SiteBusProduce, Profile{ErrorRate: 1})
	err := p.Inject(SiteBusProduce, nil)
	if err == nil {
		t.Fatal("rate-1 profile injected nothing")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(ErrInjected) = false for %v", err)
	}
}

func TestUnprofiledSiteDoesNotDraw(t *testing.T) {
	// Two planes, same seed; one takes 100 draws at an *unprofiled*
	// site in between. If unprofiled sites consumed PRNG state the
	// profiled schedules would diverge.
	prof := Profile{ErrorRate: 0.2}
	a, b := NewPlane(7), NewPlane(7)
	a.SetProfile(SiteVMMBoot, prof)
	b.SetProfile(SiteVMMBoot, prof)
	for i := 0; i < 100; i++ {
		if err := a.Inject(SiteNetTransfer, nil); err != nil {
			t.Fatalf("unprofiled site injected %v", err)
		}
	}
	sa := schedule(a, SiteVMMBoot, 100, nil)
	sb := schedule(b, SiteVMMBoot, 100, nil)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("draw %d diverged after unprofiled-site traffic", i)
		}
	}
}

func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	if err := p.Inject(SiteVMMRestore, vclock.New()); err != nil {
		t.Fatal(err)
	}
	p.SetProfile(SiteVMMBoot, Profile{ErrorRate: 1})
	p.SetAll(Profile{ErrorRate: 1})
	p.Enqueue(SiteVMMBoot, KindError)
	p.Instrument(metrics.NewRegistry())
	if p.Seed() != 0 {
		t.Fatal("nil plane seed")
	}
}

func TestEnqueueForcesFaults(t *testing.T) {
	p := NewPlane(1) // no profile on the site: only the script fires
	p.Enqueue(SiteVMMRestore, KindError, KindCorruption)
	err1 := p.Inject(SiteVMMRestore, nil)
	err2 := p.Inject(SiteVMMRestore, nil)
	err3 := p.Inject(SiteVMMRestore, nil)
	var f1, f2 *Fault
	if !errors.As(err1, &f1) || f1.Kind != KindError {
		t.Fatalf("first scripted fault = %v", err1)
	}
	if !errors.As(err2, &f2) || f2.Kind != KindCorruption {
		t.Fatalf("second scripted fault = %v", err2)
	}
	if err3 != nil {
		t.Fatalf("drained script still injected %v", err3)
	}
}

func TestInjectionMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := NewPlane(1)
	p.Instrument(reg)
	p.Enqueue(SiteVMMRestore, KindError, KindError, KindLatency)
	for i := 0; i < 3; i++ {
		_ = p.Inject(SiteVMMRestore, vclock.New())
	}
	if got := reg.Counter(metrics.Name("faults_injected_total", "site", SiteVMMRestore, "kind", "error")).Value(); got != 2 {
		t.Fatalf("error count = %d, want 2", got)
	}
	if got := reg.Counter(metrics.Name("faults_injected_total", "site", SiteVMMRestore, "kind", "latency")).Value(); got != 1 {
		t.Fatalf("latency count = %d, want 1", got)
	}
}

func TestProfileRateOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rates summing past 1")
		}
	}()
	NewPlane(1).SetProfile(SiteVMMBoot, Profile{ErrorRate: 0.7, CrashRate: 0.7})
}

func TestDefaultPlanCoversEverySite(t *testing.T) {
	p := DefaultPlan(9, 0.5)
	for _, site := range Sites() {
		p.mu.Lock()
		prof, ok := p.profiles[site]
		p.mu.Unlock()
		if !ok || prof.total() == 0 {
			t.Errorf("site %s unprofiled in DefaultPlan", site)
		}
	}
}
