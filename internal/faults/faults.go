// Package faults is the deterministic fault-injection plane of the
// simulated stack, plus the resilience primitives (retry with backoff,
// per-attempt deadlines) the platforms use to survive it.
//
// The paper's evaluation assumes restores, queue fetches, and remote
// snapshot transfers always succeed; a production control plane lives
// or dies by how it degrades when they don't. The plane gives every
// fragile hot path a named injection site; per-site fault profiles
// (error, latency spike, corruption, node crash) are driven by one
// SplitMix64-seeded PRNG, so for a deterministic operation sequence the
// same seed reproduces the exact same fault schedule — and therefore
// the exact same metrics dump. Like virtual time, injected failure is a
// pure function of the workload and the seed.
//
// Determinism caveat: the plane draws from its PRNG in operation order.
// Sequential workloads (the chaos experiment, fwbench) are exactly
// reproducible; concurrent invocations interleave draws in goroutine
// schedule order, so under concurrency the fault *rate* holds but the
// per-operation schedule does not.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Injection sites. Each names one fragile operation in the stack; a
// component checks its site via Plane.Inject at the top of the
// operation.
const (
	// SiteVMMBoot is a guest kernel boot (the install / cold path).
	SiteVMMBoot = "vmm.boot"
	// SiteVMMRestore is a snapshot restore into a fresh microVM — the
	// paper's headline hot path and, per the Firecracker studies, the
	// fragile one.
	SiteVMMRestore = "vmm.restore"
	// SiteRemoteFetch is a snapshot image transfer from remote storage.
	SiteRemoteFetch = "snapshot.remote.fetch"
	// SiteBusProduce is a parameter produce to the message bus.
	SiteBusProduce = "msgbus.produce"
	// SiteBusConsume is the resumed clone's parameter fetch.
	SiteBusConsume = "msgbus.consume"
	// SiteNetTransfer is a packet send through the NAT router.
	SiteNetTransfer = "netsim.transfer"
	// SiteClusterNode is a whole-backend failure: the node picked for a
	// placement crashes before completing the invocation.
	SiteClusterNode = "cluster.node"
)

// Sites returns every known injection site.
func Sites() []string {
	return []string{
		SiteVMMBoot, SiteVMMRestore, SiteRemoteFetch,
		SiteBusProduce, SiteBusConsume, SiteNetTransfer, SiteClusterNode,
	}
}

// Kind classifies what an injected fault does.
type Kind string

// Fault kinds.
const (
	// KindError fails the operation with an injected error.
	KindError Kind = "error"
	// KindLatency charges a latency spike to the operation's clock; the
	// operation itself succeeds (slowly). With a per-attempt deadline a
	// Retrier turns a spiked attempt into a timeout.
	KindLatency Kind = "latency"
	// KindCorruption fails the operation the way a checksum mismatch
	// would: the transfer "completed" but the payload is unusable.
	KindCorruption Kind = "corruption"
	// KindCrash kills the component behind the site (a cluster node);
	// the operation fails and the component needs recovery.
	KindCrash Kind = "crash"
)

// ErrInjected is the sentinel every injected fault matches via
// errors.Is — the resilience layer's test for "transient by
// construction, worth retrying".
var ErrInjected = errors.New("faults: injected")

// Fault is one injected failure. It is the error returned by the
// faulted operation (wrapped by however many layers sit above it);
// errors.Is(err, ErrInjected) survives the wrapping.
type Fault struct {
	Site string
	Kind Kind
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected %s at %s", f.Kind, f.Site)
}

// Is matches the ErrInjected sentinel.
func (f *Fault) Is(target error) bool { return target == ErrInjected }

// Profile sets the fault mix of one site. Rates are per-operation
// probabilities and are mutually exclusive: one PRNG draw per operation
// selects at most one fault, so the total must stay <= 1.
type Profile struct {
	ErrorRate      float64
	LatencyRate    float64
	CorruptionRate float64
	CrashRate      float64
	// LatencySpike is the virtual time a latency fault charges
	// (DefaultLatencySpike when zero).
	LatencySpike time.Duration
}

// DefaultLatencySpike is long enough to blow a Retrier's per-attempt
// deadline, so latency faults exercise the timeout path rather than
// just shifting the tail.
const DefaultLatencySpike = 1500 * time.Millisecond

func (p Profile) total() float64 {
	return p.ErrorRate + p.LatencyRate + p.CorruptionRate + p.CrashRate
}

// Plane is the central fault-injection plane of one simulated
// deployment (a host, or a whole cluster sharing one plane via
// EnvConfig). A nil *Plane is valid and injects nothing, so components
// hold and consult one unconditionally.
type Plane struct {
	mu       sync.Mutex
	seed     uint64
	rng      *vclock.Rand
	profiles map[string]Profile
	// script holds per-site queues of forced faults, consumed before
	// the profile draw — deterministic single-shot injection for tests
	// and targeted experiments.
	script map[string][]Kind

	reg *metrics.Registry
}

// NewPlane returns a plane whose fault schedule is a pure function of
// seed and the operation sequence. No sites are profiled yet; an
// unprofiled site never draws (and so never perturbs the schedule of
// profiled ones).
func NewPlane(seed uint64) *Plane {
	return &Plane{
		seed:     seed,
		rng:      vclock.NewRand(seed),
		profiles: make(map[string]Profile),
		script:   make(map[string][]Kind),
	}
}

// Seed returns the plane's PRNG seed.
func (p *Plane) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Instrument attaches the plane to a metrics registry:
// faults_injected_total{site,kind} counts every injected fault.
func (p *Plane) Instrument(reg *metrics.Registry) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reg = reg
	p.mu.Unlock()
}

// SetProfile installs (or replaces) a site's fault profile. A zero
// profile disarms the site without removing its draw — use
// ClearProfile to also stop drawing.
func (p *Plane) SetProfile(site string, prof Profile) {
	if p == nil {
		return
	}
	if t := prof.total(); t > 1 {
		panic(fmt.Sprintf("faults: profile rates for %s sum to %v > 1", site, t))
	}
	p.mu.Lock()
	p.profiles[site] = prof
	p.mu.Unlock()
}

// SetAll installs the same profile on every known site.
func (p *Plane) SetAll(prof Profile) {
	for _, site := range Sites() {
		p.SetProfile(site, prof)
	}
}

// ClearProfile removes a site's profile entirely; the site stops
// drawing from the PRNG.
func (p *Plane) ClearProfile(site string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.profiles, site)
	p.mu.Unlock()
}

// Enqueue forces the next len(kinds) operations at site to fault with
// the given kinds, ahead of (and without consuming) the profile draw.
func (p *Plane) Enqueue(site string, kinds ...Kind) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.script[site] = append(p.script[site], kinds...)
	p.mu.Unlock()
}

// Inject consults the plane at a site: at most one fault is selected
// per call. Latency faults charge their spike to clock (when non-nil)
// and return nil — the operation succeeds, slowly. Error, corruption,
// and crash faults return a *Fault the operation must propagate.
// A nil plane, or a site without profile or script, injects nothing.
func (p *Plane) Inject(site string, clock *vclock.Clock) error {
	return p.InjectTraced(site, clock, nil, 0)
}

// InjectTraced is Inject under an event scope: every injected fault
// additionally emits a "faults" event at its site, timestamped with
// the clock (or with `at` for clockless sites like the message bus).
func (p *Plane) InjectTraced(site string, clock *vclock.Clock, sc *events.Scope, at time.Duration) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	kind, spike, ok := p.drawLocked(site)
	reg := p.reg
	p.mu.Unlock()
	if !ok {
		return nil
	}
	reg.Counter(metrics.Name("faults_injected_total", "site", site, "kind", string(kind))).Inc()
	if kind == KindLatency {
		if clock != nil {
			clock.Advance(spike)
			at = clock.Now()
		}
		sc.Instant("faults", site, at,
			events.A("kind", string(kind)), events.A("spike", spike.String()))
		return nil
	}
	if clock != nil {
		at = clock.Now()
	}
	sc.Instant("faults", site, at, events.A("kind", string(kind)))
	return &Fault{Site: site, Kind: kind}
}

// drawLocked picks the fault for one operation; caller holds p.mu.
func (p *Plane) drawLocked(site string) (Kind, time.Duration, bool) {
	prof := p.profiles[site]
	if q := p.script[site]; len(q) > 0 {
		kind := q[0]
		p.script[site] = q[1:]
		return kind, prof.spike(), true
	}
	if prof.total() == 0 {
		return "", 0, false
	}
	r := p.rng.Float64()
	switch {
	case r < prof.ErrorRate:
		return KindError, 0, true
	case r < prof.ErrorRate+prof.LatencyRate:
		return KindLatency, prof.spike(), true
	case r < prof.ErrorRate+prof.LatencyRate+prof.CorruptionRate:
		return KindCorruption, 0, true
	case r < prof.total():
		return KindCrash, 0, true
	}
	return "", 0, false
}

func (p Profile) spike() time.Duration {
	if p.LatencySpike > 0 {
		return p.LatencySpike
	}
	return DefaultLatencySpike
}

// DefaultPlan builds the standard chaos configuration used by
// `fwsim -faults` and the chaos experiment: every data-path site faults
// at the given per-operation rate (split between errors, latency
// spikes, and — on transfer sites — corruption), and the cluster site
// crashes nodes at the same rate.
func DefaultPlan(seed uint64, rate float64) *Plane {
	p := NewPlane(seed)
	p.ApplyDefaultPlan(rate)
	return p
}

// ApplyDefaultPlan arms the DefaultPlan profiles on an existing plane —
// the pattern for experiments that install functions fault-free first
// and unleash faults only on the invoke phase.
func (p *Plane) ApplyDefaultPlan(rate float64) {
	if p == nil {
		return
	}
	p.SetProfile(SiteVMMBoot, Profile{ErrorRate: rate})
	p.SetProfile(SiteVMMRestore, Profile{ErrorRate: rate * 0.6, LatencyRate: rate * 0.4})
	p.SetProfile(SiteRemoteFetch, Profile{ErrorRate: rate * 0.4, LatencyRate: rate * 0.2, CorruptionRate: rate * 0.4})
	// Bus operations have no invocation clock at the broker layer, so
	// their profile is error-only (a latency draw there would count but
	// charge nothing).
	p.SetProfile(SiteBusProduce, Profile{ErrorRate: rate})
	p.SetProfile(SiteBusConsume, Profile{ErrorRate: rate * 0.6, CorruptionRate: rate * 0.4})
	p.SetProfile(SiteNetTransfer, Profile{ErrorRate: rate})
	p.SetProfile(SiteClusterNode, Profile{CrashRate: rate})
}
