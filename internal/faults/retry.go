package faults

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Errors classifying why a Retrier gave up (both match via errors.Is
// through the returned wrapper).
var (
	// ErrAttemptTimeout marks an attempt that exceeded the per-attempt
	// deadline — including "successful" attempts whose result arrived
	// too late to use (the caller's discard hook disposes of it).
	ErrAttemptTimeout = errors.New("faults: attempt exceeded deadline")
	// ErrRetryBudget marks a retry loop cut short because the next
	// backoff would overrun the total virtual-time budget.
	ErrRetryBudget = errors.New("faults: retry budget exhausted")
)

// RetryPolicy tunes a Retrier. The zero value disables retries
// entirely (single attempt, no deadline, no backoff) — resilience is
// opt-in, preserving the paper's fail-fast baseline.
type RetryPolicy struct {
	// MaxAttempts caps total attempts; <= 1 means a single attempt.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further
	// retry multiplies it by Multiplier, capped at MaxBackoff. All
	// backoff is charged to the invocation's virtual clock.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Multiplier  float64
	// Jitter perturbs each backoff by at most this fraction, drawn from
	// the Retrier's own seeded PRNG — decorrelated retries that are
	// still bit-reproducible run to run.
	Jitter float64
	// AttemptTimeout is the per-attempt deadline: an attempt whose
	// virtual-time cost exceeds it counts as a failure even if the
	// operation returned success (the discard hook cleans up).
	// Zero disables deadlines.
	AttemptTimeout time.Duration
	// Budget caps the total virtual time one Do call may spend across
	// attempts and backoff; zero disables the cap.
	Budget time.Duration
	// Seed seeds the jitter PRNG (a fixed default when zero), kept
	// separate from the fault plane's PRNG so retry jitter never
	// perturbs the fault schedule.
	Seed uint64
	// Permanent, when non-nil, marks errors that retrying cannot fix
	// (bad request, image permanently gone, store wedged by pins);
	// Do returns them immediately.
	Permanent func(error) bool
}

// DefaultRetryPolicy is the policy the chaos experiment and
// `fwsim -faults` enable: four attempts, 2 ms..50 ms exponential
// backoff with 25% deterministic jitter, a 1 s per-attempt deadline
// (above any healthy operation, below a latency spike), and a 4 s
// total budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.25,
		AttemptTimeout: time.Second,
		Budget:         4 * time.Second,
	}
}

// Retrier executes operations under a RetryPolicy, charging every
// backoff to the operation's virtual clock. A nil Retrier (or one with
// a single-attempt policy) runs the operation once, unguarded.
type Retrier struct {
	policy RetryPolicy
	rng    *vclock.Rand

	retries   *metrics.Counter
	backoffH  *metrics.Histogram
	exhausted *metrics.Counter
	timeouts  *metrics.Counter
}

// NewRetrier builds a Retrier, registering retries_total,
// retry_backoff_seconds, retry_exhausted_total, and
// retry_attempt_timeouts_total on reg (nil reg = uninstrumented).
func NewRetrier(policy RetryPolicy, reg *metrics.Registry) *Retrier {
	if policy.Multiplier <= 0 {
		policy.Multiplier = 2
	}
	seed := policy.Seed
	if seed == 0 {
		seed = 0x5ee0f0a11ed
	}
	return &Retrier{
		policy:    policy,
		rng:       vclock.NewRand(seed),
		retries:   reg.Counter("retries_total"),
		backoffH:  reg.Histogram("retry_backoff_seconds"),
		exhausted: reg.Counter("retry_exhausted_total"),
		timeouts:  reg.Counter("retry_attempt_timeouts_total"),
	}
}

// Enabled reports whether the Retrier will ever retry.
func (r *Retrier) Enabled() bool {
	return r != nil && r.policy.MaxAttempts > 1
}

// Do runs op until it succeeds within the per-attempt deadline, fails
// permanently, or the policy's attempts / budget run out.
func (r *Retrier) Do(clock *vclock.Clock, op func() error) error {
	return r.DoWithDiscardTraced(clock, nil, "", op, nil)
}

// DoTraced is Do under an event scope: each retry (and the final
// give-up) emits a "retry" event named label.
func (r *Retrier) DoTraced(clock *vclock.Clock, sc *events.Scope, label string, op func() error) error {
	return r.DoWithDiscardTraced(clock, sc, label, op, nil)
}

// DoWithDiscard is Do for operations whose success leaves a resource
// behind: when a successful attempt exceeds the per-attempt deadline
// its result is unusable, and discard disposes of it before the retry
// (stop the slow-restored VM, drop the stale image).
func (r *Retrier) DoWithDiscard(clock *vclock.Clock, op func() error, discard func()) error {
	return r.DoWithDiscardTraced(clock, nil, "", op, discard)
}

// DoWithDiscardTraced is DoWithDiscard under an event scope.
func (r *Retrier) DoWithDiscardTraced(clock *vclock.Clock, sc *events.Scope, label string, op func() error, discard func()) error {
	if !r.Enabled() {
		return op()
	}
	start := clock.Now()
	var lastErr error
	for attempt := 1; ; attempt++ {
		mark := clock.Now()
		err := op()
		elapsed := clock.Since(mark)
		timedOut := r.policy.AttemptTimeout > 0 && elapsed > r.policy.AttemptTimeout
		if err == nil && !timedOut {
			return nil
		}
		if err == nil {
			// Success arrived past the deadline: unusable.
			r.timeouts.Inc()
			if discard != nil {
				discard()
			}
			err = fmt.Errorf("%w (%v > %v)", ErrAttemptTimeout, elapsed, r.policy.AttemptTimeout)
		} else if r.policy.Permanent != nil && r.policy.Permanent(err) {
			return err
		}
		lastErr = err
		if attempt >= r.policy.MaxAttempts {
			r.exhausted.Inc()
			sc.Instant("retry", label, clock.Now(),
				events.A("outcome", "exhausted"), events.A("attempts", strconv.Itoa(attempt)))
			return fmt.Errorf("faults: %d attempts failed: %w", attempt, lastErr)
		}
		backoff := r.backoff(attempt)
		if r.policy.Budget > 0 && clock.Since(start)+backoff > r.policy.Budget {
			r.exhausted.Inc()
			sc.Instant("retry", label, clock.Now(),
				events.A("outcome", "budget-exhausted"), events.A("attempts", strconv.Itoa(attempt)))
			return fmt.Errorf("%w after %d attempts: %v", ErrRetryBudget, attempt, lastErr)
		}
		clock.Advance(backoff)
		r.retries.Inc()
		r.backoffH.ObserveDurationExemplar(backoff, uint64(sc.TraceID()), clock.Now())
		sc.Instant("retry", label, clock.Now(),
			events.A("attempt", strconv.Itoa(attempt+1)), events.A("backoff", backoff.String()))
	}
}

// backoff computes the wait before retry number attempt (1-based),
// exponential with deterministic jitter.
func (r *Retrier) backoff(attempt int) time.Duration {
	d := float64(r.policy.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= r.policy.Multiplier
		if r.policy.MaxBackoff > 0 && d > float64(r.policy.MaxBackoff) {
			d = float64(r.policy.MaxBackoff)
			break
		}
	}
	out := time.Duration(d)
	if r.policy.MaxBackoff > 0 && out > r.policy.MaxBackoff {
		out = r.policy.MaxBackoff
	}
	return r.rng.Jitter(out, r.policy.Jitter)
}

// IsTransient reports whether an error chain is worth a failover:
// injected faults, attempt timeouts, and budget exhaustion are
// transient by construction; anything else (bad request, unknown
// function) would fail identically on every node.
func IsTransient(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrAttemptTimeout) || errors.Is(err, ErrRetryBudget)
}
