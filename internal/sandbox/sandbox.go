// Package sandbox models the execution sandboxes the paper compares:
// Firecracker microVMs, plain containers (OpenWhisk/Docker), gVisor
// sandboxes (Sentry/Gofer syscall interception), and V8-isolate style
// runtime sandboxes (Cloudflare Workers). Each sandbox class carries a
// calibrated cost profile — creation, warm resume, per-operation disk
// and network I/O, per-syscall interception overhead — and the
// qualitative traits behind Table 1.
//
// The I/O cost asymmetries here are what reproduce the paper's
// faas-diskio and faas-netlatency orderings: containers write through
// OverlayFS straight to the host page cache (cheapest), microVMs pay the
// virtio/9p boundary, and gVisor pays Sentry syscall interception plus
// Gofer file relays (most expensive by far).
package sandbox

import (
	"time"

	"repro/internal/vclock"
)

// Isolation grades a sandbox's isolation strength as Table 1 does.
type Isolation int

// Isolation levels.
const (
	IsolationLow    Isolation = iota // shared runtime process
	IsolationMedium                  // container (shared kernel)
	IsolationHigh                    // VM boundary
)

// String returns the Table 1 wording.
func (i Isolation) String() string {
	switch i {
	case IsolationHigh:
		return "High (VM)"
	case IsolationMedium:
		return "Medium (container)"
	default:
		return "Low (runtime)"
	}
}

// Class names a sandbox implementation.
type Class string

// Sandbox classes.
const (
	ClassFirecracker Class = "firecracker"
	ClassContainer   Class = "container"
	ClassGVisor      Class = "gvisor"
	ClassIsolate     Class = "isolate"
)

// Profile is the calibrated cost model of one sandbox class.
type Profile struct {
	Class     Class
	Isolation Isolation

	// ColdCreate is sandbox creation from nothing (runc start, runsc +
	// Sentry boot, ...). For Firecracker the vmm package owns the
	// VM-create and kernel-boot costs instead.
	ColdCreate time.Duration
	// WarmResume unpauses a kept-alive sandbox.
	WarmResume time.Duration

	// Disk I/O: one operation costs DiskOpBase + size/KiB *
	// DiskPerKB. Reads and writes are modeled symmetrically; the
	// between-class ratio is what matters.
	DiskOpBase time.Duration
	DiskPerKB  time.Duration

	// Network: sending or receiving one message costs NetOpBase +
	// size/KiB * NetPerKB. For microVMs this includes the tap+NAT hop.
	NetOpBase time.Duration
	NetPerKB  time.Duration

	// SyscallOverhead is added per intercepted syscall (gVisor's
	// Sentry); zero elsewhere.
	SyscallOverhead time.Duration

	// ExecOverheadFactor taxes pure execution time by this fraction,
	// modeling Sentry's interception of the runtime's own syscalls
	// (mmap, futex, clock_gettime) during computation — the reason the
	// paper sees gVisor's *execution* lag too, not just its I/O.
	ExecOverheadFactor float64

	// InfraBytes is host memory attributed to sandbox infrastructure
	// (pause container, Sentry, ...), on top of guest memory.
	InfraBytes uint64
}

// Profiles returns the calibrated profile for a class.
func Profiles(c Class) Profile {
	switch c {
	case ClassFirecracker:
		return Profile{
			Class:      ClassFirecracker,
			Isolation:  IsolationHigh,
			ColdCreate: 0, // owned by vmm: CostVMCreate + CostKernelBoot
			WarmResume: 0, // owned by vmm: CostWarmResume
			// virtio-blk/9p boundary: pricier than a host syscall,
			// far cheaper than Sentry+Gofer.
			DiskOpBase:      34 * time.Microsecond,
			DiskPerKB:       2600 * time.Nanosecond,
			NetOpBase:       105 * time.Microsecond, // includes tap+NAT
			NetPerKB:        900 * time.Nanosecond,
			SyscallOverhead: 0,
			InfraBytes:      0, // accounted by vmm (VMM process overhead)
		}
	case ClassContainer:
		return Profile{
			Class:           ClassContainer,
			Isolation:       IsolationMedium,
			ColdCreate:      430 * time.Millisecond, // runc + image setup
			WarmResume:      18 * time.Millisecond,
			DiskOpBase:      16 * time.Microsecond, // OverlayFS -> host page cache
			DiskPerKB:       1100 * time.Nanosecond,
			NetOpBase:       78 * time.Microsecond,
			NetPerKB:        700 * time.Nanosecond,
			SyscallOverhead: 0,
			InfraBytes:      14 << 20,
		}
	case ClassGVisor:
		return Profile{
			Class:     ClassGVisor,
			Isolation: IsolationMedium,
			// runsc + Sentry boot + platform security checks: slower
			// than plain runc, faster than a full VM boot (Fig. 6).
			ColdCreate: 1080 * time.Millisecond,
			WarmResume: 24 * time.Millisecond,
			// Sentry seccomp trap + Gofer 9P relay per file op.
			DiskOpBase:         440 * time.Microsecond,
			DiskPerKB:          11 * time.Microsecond,
			NetOpBase:          290 * time.Microsecond,
			NetPerKB:           2400 * time.Nanosecond,
			SyscallOverhead:    2200 * time.Nanosecond,
			ExecOverheadFactor: 0.14,     // Sentry tax on the runtime's own syscalls
			InfraBytes:         52 << 20, // Sentry + Gofer
		}
	case ClassIsolate:
		return Profile{
			Class:           ClassIsolate,
			Isolation:       IsolationLow,
			ColdCreate:      4 * time.Millisecond, // new V8 isolate in a warm process
			WarmResume:      400 * time.Microsecond,
			DiskOpBase:      15 * time.Microsecond,
			DiskPerKB:       1100 * time.Nanosecond,
			NetOpBase:       55 * time.Microsecond,
			NetPerKB:        650 * time.Nanosecond,
			SyscallOverhead: 0,
			InfraBytes:      2 << 20,
		}
	default:
		panic("sandbox: unknown class " + string(c))
	}
}

// ChargeDiskOp charges one disk operation of the given size.
func (p *Profile) ChargeDiskOp(clock *vclock.Clock, bytes int) {
	kb := (bytes + 1023) / 1024
	clock.Advance(p.DiskOpBase + time.Duration(kb)*p.DiskPerKB + p.SyscallOverhead)
}

// ChargeNetOp charges one network send or receive of the given size.
func (p *Profile) ChargeNetOp(clock *vclock.Clock, bytes int) {
	kb := (bytes + 1023) / 1024
	clock.Advance(p.NetOpBase + time.Duration(kb)*p.NetPerKB + p.SyscallOverhead)
}

// ChargeSyscalls charges n intercepted syscalls (no-op for classes
// without interception).
func (p *Profile) ChargeSyscalls(clock *vclock.Clock, n int) {
	if p.SyscallOverhead > 0 && n > 0 {
		clock.Advance(time.Duration(n) * p.SyscallOverhead)
	}
}

// Traits is the qualitative Table 1 row for a platform.
type Traits struct {
	Platform         string
	Isolation        string
	Performance      string
	MemoryEfficiency string
}

// Table1 reproduces the paper's design-comparison matrix.
func Table1() []Traits {
	return []Traits{
		{"Firecracker (Amazon)", IsolationHigh.String(), "Medium (snapshot)", "High (snapshot)"},
		{"OpenWhisk (IBM)", IsolationMedium.String(), "Low (no optimization)", "Low (pre-launching)"},
		{"gVisor (Google)", IsolationMedium.String(), "Medium (snapshot)", "High (snapshot)"},
		{"Cloudflare Workers", IsolationLow.String(), "High (pre-launching)", "High (process sharing)"},
		{"Catalyzer", IsolationMedium.String(), "High (pre-launching)", "High (process sharing)"},
		{"Fireworks", IsolationHigh.String(), "Extreme (snapshot+JIT)", "Extreme (snapshot+JIT)"},
	}
}
