package sandbox

import (
	"testing"

	"repro/internal/vclock"
)

func TestProfilesExist(t *testing.T) {
	for _, c := range []Class{ClassFirecracker, ClassContainer, ClassGVisor, ClassIsolate} {
		p := Profiles(c)
		if p.Class != c {
			t.Errorf("profile for %s has class %s", c, p.Class)
		}
	}
}

func TestUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Profiles(Class("mystery"))
}

func TestIsolationOrdering(t *testing.T) {
	fc := Profiles(ClassFirecracker)
	ct := Profiles(ClassContainer)
	gv := Profiles(ClassGVisor)
	iso := Profiles(ClassIsolate)
	if fc.Isolation != IsolationHigh {
		t.Error("firecracker not high isolation")
	}
	if ct.Isolation != IsolationMedium || gv.Isolation != IsolationMedium {
		t.Error("containers not medium isolation")
	}
	if iso.Isolation != IsolationLow {
		t.Error("isolate not low isolation")
	}
	if IsolationHigh.String() != "High (VM)" || IsolationLow.String() != "Low (runtime)" {
		t.Error("isolation strings wrong")
	}
}

// TestIOCostOrdering locks in the asymmetry behind Figure 6(c):
// container disk I/O < microVM (virtio/9p) < gVisor (Sentry+Gofer).
func TestIOCostOrdering(t *testing.T) {
	const size = 10240 // the faas-diskio block size
	cost := func(c Class) int64 {
		clock := vclock.New()
		p := Profiles(c)
		p.ChargeDiskOp(clock, size)
		return int64(clock.Now())
	}
	ct, fc, gv := cost(ClassContainer), cost(ClassFirecracker), cost(ClassGVisor)
	if !(ct < fc && fc < gv) {
		t.Fatalf("disk cost ordering broken: container=%d firecracker=%d gvisor=%d", ct, fc, gv)
	}
	// The paper reports gVisor I/O up to ~9x slower than Fireworks' VM
	// path; the per-op ratio must support that.
	if ratio := float64(gv) / float64(fc); ratio < 5 || ratio > 20 {
		t.Fatalf("gvisor/vm disk ratio = %.1f, want 5-20", ratio)
	}
}

func TestColdCreateOrdering(t *testing.T) {
	// OpenWhisk containers < gVisor cold creation (Figure 6); the VM
	// boot cost lives in vmm, so ClassFirecracker has 0 here.
	ct, gv := Profiles(ClassContainer), Profiles(ClassGVisor)
	if ct.ColdCreate >= gv.ColdCreate {
		t.Fatalf("container cold %v not below gvisor %v", ct.ColdCreate, gv.ColdCreate)
	}
	if Profiles(ClassFirecracker).ColdCreate != 0 {
		t.Fatal("firecracker cold create should be owned by vmm")
	}
}

func TestChargeNetIncludesSize(t *testing.T) {
	p := Profiles(ClassContainer)
	small, large := vclock.New(), vclock.New()
	p.ChargeNetOp(small, 100)
	p.ChargeNetOp(large, 100*1024)
	if large.Now() <= small.Now() {
		t.Fatal("net cost not size-dependent")
	}
}

func TestChargeSyscalls(t *testing.T) {
	gv := Profiles(ClassGVisor)
	clock := vclock.New()
	gv.ChargeSyscalls(clock, 100)
	if clock.Now() != 100*gv.SyscallOverhead {
		t.Fatalf("syscall cost = %v", clock.Now())
	}
	ct := Profiles(ClassContainer)
	clock2 := vclock.New()
	ct.ChargeSyscalls(clock2, 100)
	if clock2.Now() != 0 {
		t.Fatal("container charged syscall interception")
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Platform != "Fireworks" || last.Isolation != "High (VM)" {
		t.Fatalf("fireworks row: %+v", last)
	}
	for _, r := range rows {
		if r.Platform == "" || r.Isolation == "" || r.Performance == "" || r.MemoryEfficiency == "" {
			t.Fatalf("incomplete row: %+v", r)
		}
	}
}
