// Package couchdb is a small CouchDB-flavored document store used by the
// ServerlessBench applications (Alexa Skills' reminder skill and the
// data-analysis pipeline): named databases of JSON-shaped documents with
// _id/_rev optimistic concurrency, Mango-style equality selectors, and a
// change feed that triggers downstream function chains on updates
// (Figure 8(b)'s dashed box).
package couchdb

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("couchdb: document not found")
	ErrConflict = errors.New("couchdb: document update conflict")
	ErrNoDB     = errors.New("couchdb: database does not exist")
)

// Document is a JSON-shaped document; "_id" and "_rev" are maintained by
// the store.
type Document map[string]any

// ID returns the document's _id.
func (d Document) ID() string {
	id, _ := d["_id"].(string)
	return id
}

// Rev returns the document's _rev.
func (d Document) Rev() string {
	rev, _ := d["_rev"].(string)
	return rev
}

// clone returns a deep copy so callers cannot mutate stored state.
func (d Document) clone() Document {
	return Document(cloneAny(map[string]any(d)).(map[string]any))
}

func cloneAny(v any) any {
	switch v := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(v))
		for k, val := range v {
			out[k] = cloneAny(val)
		}
		return out
	case []any:
		out := make([]any, len(v))
		for i, val := range v {
			out[i] = cloneAny(val)
		}
		return out
	default:
		return v
	}
}

// Change is one entry of a database's change feed.
type Change struct {
	Seq     int64
	ID      string
	Rev     string
	Deleted bool
	Doc     Document
}

// Server holds named databases.
type Server struct {
	mu  sync.Mutex
	dbs map[string]*Database
}

// NewServer returns an empty CouchDB server.
func NewServer() *Server {
	return &Server{dbs: make(map[string]*Database)}
}

// CreateDB creates a database (idempotent).
func (s *Server) CreateDB(name string) *Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.dbs[name]; ok {
		return db
	}
	db := &Database{name: name, docs: make(map[string]Document)}
	s.dbs[name] = db
	return db
}

// DB returns a database or ErrNoDB.
func (s *Server) DB(name string) (*Database, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDB, name)
	}
	return db, nil
}

// Names returns database names in lexical order.
func (s *Server) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Database is one document collection with a change feed.
type Database struct {
	mu        sync.Mutex
	name      string
	docs      map[string]Document
	seq       int64
	changes   []Change
	listeners []func(Change)
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// Len returns the number of live documents.
func (db *Database) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.docs)
}

// nextRev computes the successor revision of a document.
func nextRev(prev string, doc Document) string {
	gen := 1
	if prev != "" {
		if dash := strings.IndexByte(prev, '-'); dash > 0 {
			if n, err := strconv.Atoi(prev[:dash]); err == nil {
				gen = n + 1
			}
		}
	}
	h := fnv.New32a()
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%v;", k, doc[k])
	}
	return fmt.Sprintf("%d-%08x", gen, h.Sum32())
}

// Put inserts or updates a document. For updates the incoming _rev must
// match the stored revision or ErrConflict is returned. The stored
// document (with its new _rev) is returned.
func (db *Database) Put(doc Document) (Document, error) {
	id := doc.ID()
	if id == "" {
		return nil, fmt.Errorf("couchdb: document missing _id")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	current, exists := db.docs[id]
	if exists && current.Rev() != doc.Rev() {
		return nil, fmt.Errorf("%w: %s (have %s, got %s)", ErrConflict, id, current.Rev(), doc.Rev())
	}
	if !exists && doc.Rev() != "" {
		return nil, fmt.Errorf("%w: %s does not exist but _rev given", ErrConflict, id)
	}
	stored := doc.clone()
	stored["_rev"] = nextRev(doc.Rev(), stored)
	db.docs[id] = stored
	db.seq++
	change := Change{Seq: db.seq, ID: id, Rev: stored.Rev(), Doc: stored.clone()}
	db.changes = append(db.changes, change)
	listeners := append([]func(Change){}, db.listeners...)
	db.mu.Unlock()
	for _, fn := range listeners {
		fn(change)
	}
	db.mu.Lock()
	return stored.clone(), nil
}

// Get returns a document by id.
func (db *Database) Get(id string) (Document, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	doc, ok := db.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, db.name, id)
	}
	return doc.clone(), nil
}

// Delete removes a document; the given rev must match.
func (db *Database) Delete(id, rev string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	current, ok := db.docs[id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, db.name, id)
	}
	if current.Rev() != rev {
		return fmt.Errorf("%w: %s", ErrConflict, id)
	}
	delete(db.docs, id)
	db.seq++
	change := Change{Seq: db.seq, ID: id, Rev: rev, Deleted: true}
	db.changes = append(db.changes, change)
	listeners := append([]func(Change){}, db.listeners...)
	db.mu.Unlock()
	for _, fn := range listeners {
		fn(change)
	}
	db.mu.Lock()
	return nil
}

// Find returns documents whose fields equal every entry of selector
// (Mango's implicit $eq), ordered by _id.
func (db *Database) Find(selector map[string]any) []Document {
	db.mu.Lock()
	defer db.mu.Unlock()
	var ids []string
	for id, doc := range db.docs {
		match := true
		for k, want := range selector {
			if fmt.Sprintf("%v", doc[k]) != fmt.Sprintf("%v", want) {
				match = false
				break
			}
		}
		if match {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]Document, len(ids))
	for i, id := range ids {
		out[i] = db.docs[id].clone()
	}
	return out
}

// AllDocs returns every document ordered by _id.
func (db *Database) AllDocs() []Document { return db.Find(nil) }

// Changes returns the change feed entries with Seq > since.
func (db *Database) Changes(since int64) []Change {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Change
	for _, c := range db.changes {
		if c.Seq > since {
			out = append(out, c)
		}
	}
	return out
}

// Seq returns the database's current sequence number.
func (db *Database) Seq() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.seq
}

// Subscribe registers fn to run on every subsequent change — the
// Cloud-trigger hook that starts the data-analysis chain when wage
// documents are inserted.
func (db *Database) Subscribe(fn func(Change)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.listeners = append(db.listeners, fn)
}
