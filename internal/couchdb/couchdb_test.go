package couchdb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewServer()
	db := s.CreateDB("wages")
	stored, err := db.Put(Document{"_id": "w1", "name": "ada", "base": 72000})
	if err != nil {
		t.Fatal(err)
	}
	if stored.Rev() == "" || !strings.HasPrefix(stored.Rev(), "1-") {
		t.Fatalf("rev = %q", stored.Rev())
	}
	got, err := db.Get("w1")
	if err != nil {
		t.Fatal(err)
	}
	if got["name"] != "ada" {
		t.Fatalf("doc = %v", got)
	}
}

func TestPutRequiresID(t *testing.T) {
	db := NewServer().CreateDB("d")
	if _, err := db.Put(Document{"x": 1}); err == nil {
		t.Fatal("missing _id accepted")
	}
}

func TestUpdateNeedsMatchingRev(t *testing.T) {
	db := NewServer().CreateDB("d")
	v1, _ := db.Put(Document{"_id": "a", "n": 1})
	// Update without rev conflicts.
	if _, err := db.Put(Document{"_id": "a", "n": 2}); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	// Update with stale rev conflicts.
	v2, err := db.Put(Document{"_id": "a", "_rev": v1.Rev(), "n": 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v2.Rev(), "2-") {
		t.Fatalf("rev = %q", v2.Rev())
	}
	if _, err := db.Put(Document{"_id": "a", "_rev": v1.Rev(), "n": 3}); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale rev err = %v", err)
	}
	// Creating a doc with a rev conflicts.
	if _, err := db.Put(Document{"_id": "new", "_rev": "1-abc"}); !errors.Is(err, ErrConflict) {
		t.Fatalf("phantom rev err = %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	db := NewServer().CreateDB("d")
	if _, err := db.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := NewServer().CreateDB("d")
	v, _ := db.Put(Document{"_id": "a"})
	if err := db.Delete("a", "wrong"); !errors.Is(err, ErrConflict) {
		t.Fatalf("wrong rev: %v", err)
	}
	if err := db.Delete("a", v.Rev()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("doc survived delete")
	}
	if err := db.Delete("a", v.Rev()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestFindSelector(t *testing.T) {
	db := NewServer().CreateDB("d")
	db.Put(Document{"_id": "1", "type": "wage", "role": "engineer"})
	db.Put(Document{"_id": "2", "type": "wage", "role": "manager"})
	db.Put(Document{"_id": "3", "type": "stats"})
	wages := db.Find(map[string]any{"type": "wage"})
	if len(wages) != 2 {
		t.Fatalf("wages = %d", len(wages))
	}
	if wages[0].ID() != "1" || wages[1].ID() != "2" {
		t.Fatal("results not ordered by _id")
	}
	engineers := db.Find(map[string]any{"type": "wage", "role": "engineer"})
	if len(engineers) != 1 || engineers[0].ID() != "1" {
		t.Fatalf("engineers = %v", engineers)
	}
	if got := db.Find(map[string]any{"type": "absent"}); len(got) != 0 {
		t.Fatalf("phantom results: %v", got)
	}
	if all := db.AllDocs(); len(all) != 3 {
		t.Fatalf("AllDocs = %d", len(all))
	}
}

func TestStoredDocsAreIsolated(t *testing.T) {
	db := NewServer().CreateDB("d")
	doc := Document{"_id": "a", "list": []any{1, 2}}
	stored, _ := db.Put(doc)
	stored["list"].([]any)[0] = 99
	fresh, _ := db.Get("a")
	if fresh["list"].([]any)[0] == 99 {
		t.Fatal("mutating a returned doc changed the store")
	}
}

func TestChangesFeed(t *testing.T) {
	db := NewServer().CreateDB("d")
	db.Put(Document{"_id": "a"})
	seq := db.Seq()
	v, _ := db.Put(Document{"_id": "b"})
	db.Delete("b", v.Rev())
	changes := db.Changes(seq)
	if len(changes) != 2 {
		t.Fatalf("changes = %d", len(changes))
	}
	if changes[0].ID != "b" || changes[0].Deleted {
		t.Fatalf("first change: %+v", changes[0])
	}
	if !changes[1].Deleted {
		t.Fatalf("second change not a delete: %+v", changes[1])
	}
}

func TestSubscribeTriggers(t *testing.T) {
	// The data-analysis chain trigger: every insert fires the listener.
	db := NewServer().CreateDB("wages")
	var fired []string
	db.Subscribe(func(c Change) { fired = append(fired, c.ID) })
	db.Put(Document{"_id": "w1"})
	db.Put(Document{"_id": "w2"})
	if len(fired) != 2 || fired[0] != "w1" || fired[1] != "w2" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSubscriberCanWriteBack(t *testing.T) {
	// A listener that writes to another database (the analysis chain
	// storing stats) must not deadlock.
	s := NewServer()
	wages := s.CreateDB("wages")
	stats := s.CreateDB("stats")
	wages.Subscribe(func(c Change) {
		stats.Put(Document{"_id": "latest", "_rev": revOf(stats, "latest"), "count": wages.Len()})
	})
	wages.Put(Document{"_id": "w1"})
	wages.Put(Document{"_id": "w2"})
	doc, err := stats.Get("latest")
	if err != nil {
		t.Fatal(err)
	}
	if doc["count"] != 2 {
		t.Fatalf("count = %v", doc["count"])
	}
}

func revOf(db *Database, id string) string {
	doc, err := db.Get(id)
	if err != nil {
		return ""
	}
	return doc.Rev()
}

func TestServerDBLookup(t *testing.T) {
	s := NewServer()
	if _, err := s.DB("missing"); !errors.Is(err, ErrNoDB) {
		t.Fatalf("err = %v", err)
	}
	s.CreateDB("b")
	s.CreateDB("a")
	if s.CreateDB("a") == nil {
		t.Fatal("idempotent create returned nil")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

// Property: put then get returns the same scalar fields, and revisions
// advance monotonically in generation.
func TestPutGetProperty(t *testing.T) {
	db := NewServer().CreateDB("q")
	i := 0
	f := func(val int64, s string) bool {
		i++
		id := fmt.Sprintf("doc-%d", i)
		v1, err := db.Put(Document{"_id": id, "n": val, "s": s})
		if err != nil {
			return false
		}
		got, err := db.Get(id)
		if err != nil || got["n"] != val || got["s"] != s {
			return false
		}
		v2, err := db.Put(Document{"_id": id, "_rev": v1.Rev(), "n": val + 1})
		if err != nil {
			return false
		}
		return strings.HasPrefix(v1.Rev(), "1-") && strings.HasPrefix(v2.Rev(), "2-")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
