package timeseries

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSeriesRingAndWindows(t *testing.T) {
	s := newSeries("x", 4)
	for i := 1; i <= 6; i++ {
		s.append(ms(i), float64(i*10))
	}
	// Capacity 4: points 3..6 remain.
	pts := s.Points()
	if len(pts) != 4 || pts[0].Value != 30 || pts[3].Value != 60 {
		t.Fatalf("ring points = %v", pts)
	}
	last, ok := s.Last()
	if !ok || last.Value != 60 {
		t.Fatalf("last = %v %v", last, ok)
	}
	d, ok := s.DeltaSince(ms(4))
	if !ok || d != 20 { // baseline 40 at t=4ms → 60-40
		t.Fatalf("delta = %v %v", d, ok)
	}
	d, ok = s.DeltaSince(-1) // whole history → 60-30
	if !ok || d != 30 {
		t.Fatalf("full delta = %v %v", d, ok)
	}
	rate, ok := s.RateSince(-1)
	if !ok || rate != 30/0.003 {
		t.Fatalf("rate = %v %v", rate, ok)
	}
	q, ok := s.Quantile(-1, 50)
	if !ok || q != 45 {
		t.Fatalf("p50 = %v %v", q, ok)
	}
	if vals := s.WindowValues(ms(5)); len(vals) != 1 || vals[0] != 60 {
		t.Fatalf("window = %v", vals)
	}
}

func TestSeriesEmptyAndNil(t *testing.T) {
	var s *Series
	if s.Len() != 0 || s.Points() != nil {
		t.Fatal("nil series not empty")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("nil last ok")
	}
	if _, ok := s.DeltaSince(0); ok {
		t.Fatal("nil delta ok")
	}
	one := newSeries("x", 4)
	one.append(ms(1), 5)
	if _, ok := one.DeltaSince(-1); ok {
		t.Fatal("single-point delta should need two points")
	}
}

func TestSamplerRecordsRegistryAndProbes(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("requests_total")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat")
	s := NewSampler(reg, 0)
	s.AddProbe("derived", func() float64 { return 42 })

	ctr.Add(3)
	g.Set(7)
	h.ObserveDuration(5 * time.Millisecond)
	s.Sample(ms(1))
	ctr.Add(2)
	s.Sample(ms(2))

	if d, ok := s.Delta("requests_total", -1); !ok || d != 2 {
		t.Fatalf("counter delta = %v %v", d, ok)
	}
	if p, ok := s.Last("depth"); !ok || p.Value != 7 {
		t.Fatalf("gauge = %v %v", p, ok)
	}
	if p, ok := s.Last("lat.count"); !ok || p.Value != 1 {
		t.Fatalf("hist count = %v %v", p, ok)
	}
	if p, ok := s.Last("lat.p99"); !ok || p.Value != float64(5*time.Millisecond) {
		t.Fatalf("hist p99 = %v %v", p, ok)
	}
	if p, ok := s.Last("derived"); !ok || p.Value != 42 {
		t.Fatalf("probe = %v %v", p, ok)
	}
	// The sampler's own counter is itself sampled.
	if p, ok := s.Last("timeseries_samples_total"); !ok || p.Value != 2 {
		t.Fatalf("self counter = %v %v", p, ok)
	}
}

func TestSamplerFilter(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("keep_me").Inc()
	reg.Counter("drop_me").Inc()
	s := NewSampler(reg, 0)
	s.SetFilter(func(name string) bool { return strings.HasPrefix(name, "keep") })
	s.AddProbe("probe", func() float64 { return 1 })
	s.Sample(ms(1))
	names := s.Names()
	if len(names) != 2 || names[0] != "keep_me" || names[1] != "probe" {
		t.Fatalf("filtered names = %v", names)
	}
}

func TestCSVExportDeterministicAndAligned(t *testing.T) {
	build := func() *Sampler {
		reg := metrics.NewRegistry()
		c := reg.Counter("a_total")
		g := reg.Gauge("b_gauge")
		s := NewSampler(reg, 0)
		for i := 1; i <= 3; i++ {
			c.Inc()
			g.Set(int64(i * 100))
			s.Sample(ms(i))
		}
		return s
	}
	var one, two strings.Builder
	if err := build().WriteCSV(&one); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("CSV not byte-identical:\n%s\nvs\n%s", one.String(), two.String())
	}
	lines := strings.Split(strings.TrimSpace(one.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV rows = %d:\n%s", len(lines), one.String())
	}
	if lines[0] != "ts_ns,a_total,b_gauge,timeseries_samples_total" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "1000000,1,100,1" {
		t.Fatalf("CSV first row = %q", lines[1])
	}
}

func TestCSVExportSparseSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(reg, 0)
	s.AddProbe("p", func() float64 { return 1 })
	s.Sample(ms(1))
	// A probe added later leaves empty cells for earlier rows.
	s.AddProbe("q", func() float64 { return 2.5 })
	s.Sample(ms(2))
	var sb strings.Builder
	if err := s.WriteCSVFiltered(&sb, func(n string) bool { return n == "p" || n == "q" }); err != nil {
		t.Fatal(err)
	}
	want := "p,q\n1000000,1,\n2000000,1,2.5\n"
	if got := sb.String(); got != "ts_ns,"+want {
		t.Fatalf("sparse CSV = %q", got)
	}
}

func TestJSONExportParsesAndMatchesFormat(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("a_total").Inc()
	s := NewSampler(reg, 0)
	s.Sample(ms(1))
	var sb strings.Builder
	if err := s.WriteFormat(&sb, "json"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"name": "a_total"`, `"1000000"`, `"series"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json export missing %q:\n%s", want, out)
		}
	}
	if err := s.WriteFormat(&sb, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestSeriesQuantileEdgeCases(t *testing.T) {
	// Empty series: no quantile, ok=false, value stays zero.
	empty := newSeries("empty", 4)
	if v, ok := empty.Quantile(-1, 99); ok || v != 0 {
		t.Errorf("empty series quantile = %v, %v; want 0, false", v, ok)
	}

	s := newSeries("lat", 8)
	s.append(ms(10), 100)
	s.append(ms(20), 200)
	s.append(ms(30), 300)

	// Window entirely after the last sample: empty window, ok=false.
	if v, ok := s.Quantile(ms(30), 99); ok || v != 0 {
		t.Errorf("post-window quantile = %v, %v; want 0, false", v, ok)
	}

	// Single sample in the window: every quantile is that sample.
	for _, p := range []float64{0, 50, 99, 100} {
		if v, ok := s.Quantile(ms(20), p); !ok || v != 300 {
			t.Errorf("single-sample p%v = %v, %v; want 300, true", p, v, ok)
		}
	}

	// Window opening entirely before the first sample (including a
	// negative from) covers the whole series.
	for _, from := range []time.Duration{-1, 0, ms(5)} {
		if v, ok := s.Quantile(from, 50); !ok || v != 200 {
			t.Errorf("full-window (from=%v) p50 = %v, %v; want 200, true", from, v, ok)
		}
	}

	// Out-of-range and NaN percentiles clamp instead of panicking:
	// NaN used to fail both range guards and index the sorted slice
	// with a garbage rank.
	if v, ok := s.Quantile(-1, math.NaN()); !ok || v != 100 {
		t.Errorf("NaN percentile = %v, %v; want min (100), true", v, ok)
	}
	if v, ok := s.Quantile(-1, -5); !ok || v != 100 {
		t.Errorf("p(-5) = %v, %v; want min (100), true", v, ok)
	}
	if v, ok := s.Quantile(-1, 250); !ok || v != 300 {
		t.Errorf("p250 = %v, %v; want max (300), true", v, ok)
	}
}
