package timeseries

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// A tiered series keeps RateSince/Quantile answerable after the raw
// ring has wrapped: the window falls back to rollup buckets.
func TestRollupKeepsLongWindowsAnswerable(t *testing.T) {
	// Raw ring of 16 points, 10s + 60s tiers: a 1000-sample storm at
	// 1s cadence retains only the last 16s raw.
	s := newSeriesTiered("reqs", 16, []RollupSpec{
		{Width: 10 * time.Second, Capacity: 64},
		{Width: 60 * time.Second, Capacity: 64},
	})
	for i := 0; i < 1000; i++ {
		// A counter growing by 2 per virtual second.
		s.append(time.Duration(i)*time.Second, float64(2*i))
	}
	if s.Len() != 16 {
		t.Fatalf("raw ring holds %d, want 16", s.Len())
	}
	// Rate over the last 500s: the baseline at t=499s predates the raw
	// ring (which starts at t=984s) and resolves via the 10s tier.
	rate, ok := s.RateSince(499 * time.Second)
	if !ok {
		t.Fatal("RateSince unanswerable over tiered history")
	}
	// Bucket baseline is (bucketStart, Min): exact slope 2/s within
	// one bucket width of rounding.
	if rate < 1.9 || rate > 2.1 {
		t.Fatalf("tier-backed rate = %.3f, want ~2.0", rate)
	}
	// Delta over everything: baseline is the deepest tier's oldest
	// bucket. The 60s tier retains 64 buckets = all 1000s of history,
	// so the delta spans the whole run.
	delta, ok := s.DeltaSince(-1)
	if !ok || delta != 2*999 {
		t.Fatalf("tier-backed delta = %.0f ok=%v, want %d", delta, ok, 2*999)
	}
	// Quantile over the long window draws on bucket min/max brackets.
	q, ok := s.Quantile(400*time.Second, 50)
	if !ok {
		t.Fatal("Quantile unanswerable over tiered history")
	}
	if q < float64(2*400) || q > float64(2*999) {
		t.Fatalf("tier-backed p50 = %.0f outside window value range", q)
	}
}

func TestRollupBucketAggregates(t *testing.T) {
	s := newSeriesTiered("lat", 8, []RollupSpec{{Width: 10 * time.Second, Capacity: 8}})
	s.append(1*time.Second, 5)
	s.append(2*time.Second, 1)
	s.append(9*time.Second, 3)
	s.append(11*time.Second, 7) // next bucket
	buckets := s.Rollup(10 * time.Second)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	b := buckets[0]
	if b.Start != 0 || b.Min != 1 || b.Max != 5 || b.Sum != 9 || b.Count != 3 {
		t.Fatalf("bucket 0 = %+v", b)
	}
	if buckets[1].Start != 10*time.Second || buckets[1].Count != 1 {
		t.Fatalf("bucket 1 = %+v", buckets[1])
	}
	if s.TierBuckets() != 2 {
		t.Fatalf("TierBuckets = %d", s.TierBuckets())
	}
}

// Without tiers, behavior is exactly the PR 5 semantics — the golden
// tests pin the exports; this pins the window fallback staying off.
func TestUntieredSeriesUnchanged(t *testing.T) {
	s := newSeries("x", 4)
	for i := 0; i < 10; i++ {
		s.append(time.Duration(i)*time.Second, float64(i))
	}
	// Baseline clamps to the oldest resident point.
	d, ok := s.DeltaSince(0)
	if !ok || d != 3 {
		t.Fatalf("untiered delta = %.0f ok=%v, want 3", d, ok)
	}
	if s.TierBuckets() != 0 || s.Rollup(time.Second) != nil {
		t.Fatal("untiered series grew tiers")
	}
}

func TestSamplerSetRollups(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("ticks_total")
	s := NewSampler(reg, 8)
	s.SetRollups(DefaultRollups())
	for i := 0; i < 100; i++ {
		c.Inc()
		s.Sample(time.Duration(i) * time.Second)
	}
	st := s.Stats()
	if st.Series == 0 || st.Points == 0 || st.TierBuckets == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The raw ring (8 points) lost t<92s; the 10s tier answers a
	// 90s-deep delta anyway.
	d, ok := s.Delta("ticks_total", 5*time.Second)
	if !ok {
		t.Fatal("tiered sampler delta unanswerable")
	}
	if d < 85 || d > 100 {
		t.Fatalf("tiered delta = %.0f, want ~95", d)
	}
	if got := s.Rollup("ticks_total", 10*time.Second); len(got) == 0 {
		t.Fatal("sampler Rollup empty")
	}
	if got := s.Rollup("ticks_total", 7*time.Second); got != nil {
		t.Fatal("unknown tier width returned buckets")
	}
}
