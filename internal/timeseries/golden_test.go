package timeseries

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
)

// driveSampler replays a fixed workload into a registry and samples it
// on a fixed cadence.
func driveSampler(reg *metrics.Registry) *Sampler {
	s := NewSampler(reg, 0)
	s.AddProbe("derived_probe", func() float64 {
		return float64(reg.Counter("invocations_total").Value()) / 2
	})
	for i := 0; i < 50; i++ {
		node := fmt.Sprintf("node-%02d", i%4)
		reg.Counter("invocations_total").Inc()
		reg.Counter(metrics.Name("node_invocations_total", "node", node)).Inc()
		reg.Gauge(metrics.Name("queue_depth", "node", node)).Set(int64(i % 5))
		reg.Histogram("invoke_latency").ObserveDuration(time.Duration(i) * time.Millisecond)
		if i%5 == 0 {
			s.Sample(time.Duration(i) * time.Second)
		}
	}
	return s
}

// TestGoldenCSVShardInvariance extends the sharded-export golden
// invariant one layer up: a timeseries sampler fed from a
// single-stripe registry and one fed from the default sharded registry
// must write byte-identical CSV and JSON artifacts for the same
// workload. This catches shard-ordering leaks through the snapshot
// path that the metrics-level golden test might mask.
func TestGoldenCSVShardInvariance(t *testing.T) {
	flatReg := metrics.NewRegistryShards(1)
	shardedReg := metrics.NewRegistry()
	flat := driveSampler(flatReg)
	sharded := driveSampler(shardedReg)

	for _, format := range []string{"csv", "json"} {
		var fb, sb bytes.Buffer
		if err := flat.WriteFormat(&fb, format); err != nil {
			t.Fatal(err)
		}
		if err := sharded.WriteFormat(&sb, format); err != nil {
			t.Fatal(err)
		}
		if fb.Len() == 0 {
			t.Fatalf("%s export is empty", format)
		}
		if !bytes.Equal(fb.Bytes(), sb.Bytes()) {
			t.Errorf("%s export differs between 1 and %d registry shards:\n--- flat ---\n%s\n--- sharded ---\n%s",
				format, metrics.DefaultShards, fb.String(), sb.String())
		}
	}
}
