package timeseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// DefaultCapacity is the per-series ring size: at one sample per
// invocation it holds the telemetry of thousands of requests.
const DefaultCapacity = 4096

// probe is a caller-supplied derived quantity sampled alongside the
// registry (sharing efficiency, fleet down-node count, …).
type probe struct {
	name string
	fn   func() float64
}

// Sampler snapshots a metrics registry into ring-buffer series on a
// virtual clock. Counters and gauges become one series each under
// their registry name; every histogram yields ".count", ".p50", and
// ".p99" derivative series. Sampling is driven by the owner (after
// each invocation, on a simulated tick, …) — the sampler never touches
// wall time, so the series are as deterministic as the workload.
//
// Safe for concurrent use.
type Sampler struct {
	mu      sync.Mutex
	reg     *metrics.Registry
	cap     int
	series  map[string]*Series
	probes  []probe
	keep    func(name string) bool
	rollups []RollupSpec
	samples *metrics.Counter
}

// NewSampler returns a sampler over reg with the given per-series
// capacity (DefaultCapacity when <= 0). The sampler counts its own
// activity as timeseries_samples_total in the same registry.
func NewSampler(reg *metrics.Registry, capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Sampler{
		reg:     reg,
		cap:     capacity,
		series:  make(map[string]*Series),
		samples: reg.Counter("timeseries_samples_total"),
	}
}

// SetFilter restricts which registry metrics are recorded: only names
// for which keep returns true get a series. Probes are always kept.
// Call before the first Sample; a nil keep records everything.
func (s *Sampler) SetFilter(keep func(name string) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keep = keep
}

// AddProbe samples a derived quantity under the given name on every
// Sample. Probe names must not collide with registry metric names.
func (s *Sampler) AddProbe(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, probe{name: name, fn: fn})
}

// SetRollups attaches downsampling tiers to every series the sampler
// creates from here on (see RollupSpec; DefaultRollups gives the
// 10s/60s tiers). Call before the first Sample so every series is
// tiered; already-created series are unaffected.
func (s *Sampler) SetRollups(specs []RollupSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rollups = append([]RollupSpec(nil), specs...)
}

// Sample snapshots the registry and every probe at virtual time now.
// Sampling the same instant twice appends two points; the owner's
// clock discipline decides the cadence.
//
// Probes are fenced: a panicking probe, or one returning NaN/Inf, is
// skipped for that sample and counted as
// timeseries_probe_errors_total{probe} — one bad derived quantity must
// not take the telemetry plane down or poison the CSV timelines.
func (s *Sampler) Sample(now time.Duration) {
	s.samples.Inc()
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range snap.Counters {
		s.recordLocked(c.Name, now, float64(c.Value))
	}
	for _, g := range snap.Gauges {
		s.recordLocked(g.Name, now, float64(g.Value))
	}
	for _, h := range snap.Histograms {
		s.recordLocked(h.Name+".count", now, float64(h.Count))
		s.recordLocked(h.Name+".p50", now, h.P50)
		s.recordLocked(h.Name+".p99", now, h.P99)
	}
	for _, p := range s.probes {
		if v, ok := runProbe(p.fn); ok {
			s.appendLocked(p.name, now, v)
		} else {
			s.reg.Counter(metrics.Name("timeseries_probe_errors_total", "probe", p.name)).Inc()
		}
	}
}

// runProbe calls one probe fn, converting panics and non-finite
// results into ok=false.
func runProbe(fn func() float64) (v float64, ok bool) {
	defer func() {
		if recover() != nil {
			v, ok = 0, false
		}
	}()
	v = fn()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// recordLocked appends a registry-sourced point, honoring the filter.
func (s *Sampler) recordLocked(name string, ts time.Duration, v float64) {
	if s.keep != nil && !s.keep(name) {
		return
	}
	s.appendLocked(name, ts, v)
}

func (s *Sampler) appendLocked(name string, ts time.Duration, v float64) {
	sr := s.series[name]
	if sr == nil {
		sr = newSeriesTiered(name, s.cap, s.rollups)
		s.series[name] = sr
	}
	sr.append(ts, v)
}

// SamplerStats is the sampler's own memory accounting, reported by
// /telemetry: how much history the plane itself is holding.
type SamplerStats struct {
	Series      int `json:"series"`
	Points      int `json:"points"`
	TierBuckets int `json:"tier_buckets"`
}

// Stats reports resident series, points, and rollup buckets.
func (s *Sampler) Stats() SamplerStats {
	var st SamplerStats
	if s == nil {
		return st
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Series = len(s.series)
	for _, sr := range s.series {
		st.Points += sr.Len()
		st.TierBuckets += sr.TierBuckets()
	}
	return st
}

// Rollup returns a copy of one series' rollup buckets at the given
// tier width (nil when absent).
func (s *Sampler) Rollup(name string, width time.Duration) []RollupBucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name].Rollup(width)
}

// Names returns every series name, sorted.
func (s *Sampler) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SeriesSnapshot is a copied view of one series.
type SeriesSnapshot struct {
	Name   string
	Points []Point
}

// Snapshot returns a copy of every series, sorted by name — the stable
// view the exporters and the watchdog evaluate over.
func (s *Sampler) Snapshot() []SeriesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(s.series))
	for name, sr := range s.series {
		out = append(out, SeriesSnapshot{Name: name, Points: sr.Points()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delta returns the named series' growth since from (see
// Series.DeltaSince).
func (s *Sampler) Delta(name string, from time.Duration) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name].DeltaSince(from)
}

// Rate returns the named series' growth per virtual second since from.
func (s *Sampler) Rate(name string, from time.Duration) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name].RateSince(from)
}

// Quantile returns the p-quantile of the named series after from.
func (s *Sampler) Quantile(name string, from time.Duration, p float64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name].Quantile(from, p)
}

// Last returns the newest point of the named series.
func (s *Sampler) Last(name string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[name].Last()
}

// windowStart converts a sliding window ending at now into the from
// mark the Series methods take: window <= 0 means all of history.
func windowStart(now, window time.Duration) time.Duration {
	if window <= 0 {
		return -1
	}
	return now - window
}

// String implements fmt.Stringer for debugging.
func (s *Sampler) String() string {
	return fmt.Sprintf("timeseries.Sampler(%d series)", len(s.Names()))
}
