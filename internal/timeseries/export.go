package timeseries

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteCSV renders every series as one wide CSV timeline: the first
// column is ts_ns (virtual nanoseconds), one column per series in
// sorted name order, one row per distinct timestamp. A cell is empty
// when its series has no point at that instant; when a series was
// sampled twice at one instant the last value wins. The output is
// byte-stable: same series, same bytes — the determinism witness the
// memory-timeline experiment diffs across runs.
func (s *Sampler) WriteCSV(w io.Writer) error {
	return writeCSV(w, s.Snapshot())
}

// WriteCSVFiltered is WriteCSV over only the series for which keep
// returns true (e.g. just the mem_* columns for a Fig-10 artifact).
func (s *Sampler) WriteCSVFiltered(w io.Writer, keep func(name string) bool) error {
	all := s.Snapshot()
	kept := all[:0]
	for _, sr := range all {
		if keep == nil || keep(sr.Name) {
			kept = append(kept, sr)
		}
	}
	return writeCSV(w, kept)
}

func writeCSV(w io.Writer, series []SeriesSnapshot) error {
	// Row skeleton: the sorted union of every timestamp.
	tsSet := make(map[time.Duration]bool)
	for _, sr := range series {
		for _, p := range sr.Points {
			tsSet[p.TS] = true
		}
	}
	tss := make([]time.Duration, 0, len(tsSet))
	for ts := range tsSet {
		tss = append(tss, ts)
	}
	sort.Slice(tss, func(i, j int) bool { return tss[i] < tss[j] })

	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "ts_ns")
	for _, sr := range series {
		header = append(header, sr.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	// Per-series cursor: points are in ascending TS order.
	cursors := make([]int, len(series))
	row := make([]string, len(series)+1)
	for _, ts := range tss {
		row[0] = strconv.FormatInt(int64(ts), 10)
		for i, sr := range series {
			cell := ""
			for cursors[i] < len(sr.Points) && sr.Points[cursors[i]].TS <= ts {
				if sr.Points[cursors[i]].TS == ts {
					cell = formatFloat(sr.Points[cursors[i]].Value)
				}
				cursors[i]++
			}
			row[i+1] = cell
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders a value compactly and deterministically:
// integers without a decimal point, everything else via strconv 'g'.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonSeries is the JSON export shape of one series.
type jsonSeries struct {
	Name   string      `json:"name"`
	Points [][2]string `json:"points"` // [ts_ns, value] pairs, stringly for stability
}

// WriteJSON renders every series as a JSON document:
//
//	{"series": [{"name": ..., "points": [["ts_ns","value"], ...]}, ...]}
//
// Values are rendered as strings with the same formatter as the CSV,
// so both exports are byte-stable and agree digit for digit.
func (s *Sampler) WriteJSON(w io.Writer) error {
	snap := s.Snapshot()
	out := struct {
		Series []jsonSeries `json:"series"`
	}{Series: make([]jsonSeries, 0, len(snap))}
	for _, sr := range snap {
		js := jsonSeries{Name: sr.Name, Points: make([][2]string, 0, len(sr.Points))}
		for _, p := range sr.Points {
			js.Points = append(js.Points, [2]string{
				strconv.FormatInt(int64(p.TS), 10), formatFloat(p.Value),
			})
		}
		out.Series = append(out.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteFormat dispatches between the two exports by name, mirroring
// metrics.WriteFormat so every surface accepts the same format names.
func (s *Sampler) WriteFormat(w io.Writer, format string) error {
	switch format {
	case "csv":
		return s.WriteCSV(w)
	case "json":
		return s.WriteJSON(w)
	default:
		return fmt.Errorf(`timeseries: unknown format %q (want "csv" or "json")`, format)
	}
}
