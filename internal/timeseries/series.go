// Package timeseries is the virtual-clock history layer over the
// metrics registry: a Sampler periodically folds registry counters,
// gauges, and histogram quantiles — plus caller-supplied probes for
// derived quantities like sharing efficiency — into bounded ring-buffer
// Series, from which deltas, rates, and sliding-window percentiles are
// computed and CSV/JSON timelines exported. A Watchdog (watchdog.go)
// evaluates declarative SLO rules over the same series on the same
// clock and emits alert events into the causal journal.
//
// Everything here is a pure function of the workload: timestamps come
// from virtual clocks and values from deterministic instruments, so a
// fixed seed reproduces every exported timeline byte for byte — the
// property the memory-timeline experiment asserts.
package timeseries

import (
	"sort"
	"time"

	"repro/internal/stats"
)

// Point is one observation of a series.
type Point struct {
	TS    time.Duration
	Value float64
}

// RollupSpec declares one downsampled retention tier of a series:
// points fold into Width-wide buckets, of which Capacity are retained.
// A 4096-point raw ring sampled once per virtual second plus 10s and
// 60s tiers keeps an hour-long storm answerable in ~triple the memory
// of the raw ring alone, instead of 3600x.
type RollupSpec struct {
	Width    time.Duration
	Capacity int
}

// DefaultRollups is the 1s→10s→60s tiering of the ISSUE: the raw ring
// is the finest tier, these two coarsen it.
func DefaultRollups() []RollupSpec {
	return []RollupSpec{
		{Width: 10 * time.Second, Capacity: 4096},
		{Width: 60 * time.Second, Capacity: 4096},
	}
}

// RollupBucket is one downsampled bucket: min/max/sum/count of the
// points whose timestamps fell in [Start, Start+Width).
type RollupBucket struct {
	Start time.Duration
	Min   float64
	Max   float64
	Sum   float64
	Count int64
}

// rollupTier is one bounded ring of rollup buckets.
type rollupTier struct {
	width time.Duration
	buf   []RollupBucket
	start int
	n     int
}

func (t *rollupTier) bucketAt(i int) RollupBucket { return t.buf[(t.start+i)%len(t.buf)] }

func (t *rollupTier) fold(ts time.Duration, v float64) {
	bs := ts - ts%t.width
	if t.n > 0 {
		last := &t.buf[(t.start+t.n-1)%len(t.buf)]
		if last.Start == bs {
			if v < last.Min {
				last.Min = v
			}
			if v > last.Max {
				last.Max = v
			}
			last.Sum += v
			last.Count++
			return
		}
	}
	if t.n == len(t.buf) {
		t.start = (t.start + 1) % len(t.buf)
		t.n--
	}
	t.buf[(t.start+t.n)%len(t.buf)] = RollupBucket{Start: bs, Min: v, Max: v, Sum: v, Count: 1}
	t.n++
}

// Series is a bounded ring of points in ascending timestamp order.
// Appending past capacity drops the oldest point. Series are created
// and owned by a Sampler, which synchronizes access; the read methods
// here assume the caller holds whatever lock guards the series.
//
// A series may carry rollup tiers (finest first): every append also
// folds into each tier, and the window reads — baselineBefore,
// WindowValues, and therefore DeltaSince/RateSince/Quantile — fall
// back to tier buckets for the part of a window the raw ring no longer
// covers. Tier reads are approximations with documented shape: a
// bucket contributes its Min as the baseline value (exact for
// monotonic counters) and its Min and Max as window values (brackets
// the true distribution).
type Series struct {
	name  string
	buf   []Point
	start int
	n     int
	tiers []*rollupTier // finest first; nil without rollups
}

func newSeries(name string, capacity int) *Series {
	return &Series{name: name, buf: make([]Point, capacity)}
}

func newSeriesTiered(name string, capacity int, specs []RollupSpec) *Series {
	s := newSeries(name, capacity)
	for _, sp := range specs {
		if sp.Width <= 0 || sp.Capacity <= 0 {
			continue
		}
		s.tiers = append(s.tiers, &rollupTier{width: sp.Width, buf: make([]RollupBucket, sp.Capacity)})
	}
	sort.Slice(s.tiers, func(i, j int) bool { return s.tiers[i].width < s.tiers[j].width })
	return s
}

// TierBuckets reports how many rollup buckets are resident across all
// tiers — the memory accounting /telemetry reports.
func (s *Series) TierBuckets() int {
	if s == nil {
		return 0
	}
	total := 0
	for _, t := range s.tiers {
		total += t.n
	}
	return total
}

// Rollup returns a copy of one tier's resident buckets, oldest first
// (nil when the series has no tier of that width).
func (s *Series) Rollup(width time.Duration) []RollupBucket {
	if s == nil {
		return nil
	}
	for _, t := range s.tiers {
		if t.width != width {
			continue
		}
		out := make([]RollupBucket, 0, t.n)
		for i := 0; i < t.n; i++ {
			out = append(out, t.bucketAt(i))
		}
		return out
	}
	return nil
}

// Name returns the series name (the registry metric name, a histogram
// derivative like "invoke_latency.p99", or a probe name).
func (s *Series) Name() string { return s.name }

// Len reports how many points are resident.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

func (s *Series) append(ts time.Duration, v float64) {
	if s.n == len(s.buf) {
		s.start = (s.start + 1) % len(s.buf)
		s.n--
	}
	s.buf[(s.start+s.n)%len(s.buf)] = Point{TS: ts, Value: v}
	s.n++
	for _, t := range s.tiers {
		t.fold(ts, v)
	}
}

func (s *Series) at(i int) Point { return s.buf[(s.start+i)%len(s.buf)] }

// Points returns a copy of the resident points, oldest first.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	out := make([]Point, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.at(i))
	}
	return out
}

// Last returns the newest point (ok=false when empty).
func (s *Series) Last() (Point, bool) {
	if s.Len() == 0 {
		return Point{}, false
	}
	return s.at(s.n - 1), true
}

// baselineBefore returns the newest point with TS <= from. When the
// window start predates the raw ring it consults the rollup tiers
// (finest first) — a bucket's baseline is (Start, Min), exact for
// monotonic counters — and only past all tier history falls back to
// the oldest resident point.
func (s *Series) baselineBefore(from time.Duration) (Point, bool) {
	if s.Len() == 0 {
		return Point{}, false
	}
	base := s.at(0)
	if base.TS > from {
		if p, ok := s.tierBaseline(from); ok {
			return p, true
		}
	}
	for i := 0; i < s.n; i++ {
		p := s.at(i)
		if p.TS > from {
			break
		}
		base = p
	}
	return base, true
}

// tierBaseline finds the newest rollup bucket with Start <= from,
// preferring finer tiers; when from predates every bucket it returns
// the oldest bucket of the deepest tier with data.
func (s *Series) tierBaseline(from time.Duration) (Point, bool) {
	for _, t := range s.tiers {
		if t.n == 0 || t.bucketAt(0).Start > from {
			continue
		}
		best := t.bucketAt(0)
		for i := 0; i < t.n; i++ {
			b := t.bucketAt(i)
			if b.Start > from {
				break
			}
			best = b
		}
		return Point{TS: best.Start, Value: best.Min}, true
	}
	for i := len(s.tiers) - 1; i >= 0; i-- {
		if t := s.tiers[i]; t.n > 0 {
			b := t.bucketAt(0)
			return Point{TS: b.Start, Value: b.Min}, true
		}
	}
	return Point{}, false
}

// DeltaSince returns how much the series grew between the baseline at
// (or before) from and the newest point — the burn-rate numerator for
// counter-backed series. ok is false when fewer than two points exist.
func (s *Series) DeltaSince(from time.Duration) (float64, bool) {
	last, ok := s.Last()
	if !ok || s.Len() < 2 {
		return 0, false
	}
	base, _ := s.baselineBefore(from)
	return last.Value - base.Value, true
}

// RateSince returns the average growth per (virtual) second between the
// baseline at from and the newest point.
func (s *Series) RateSince(from time.Duration) (float64, bool) {
	last, ok := s.Last()
	if !ok || s.Len() < 2 {
		return 0, false
	}
	base, _ := s.baselineBefore(from)
	dt := last.TS - base.TS
	if dt <= 0 {
		return 0, false
	}
	return (last.Value - base.Value) / dt.Seconds(), true
}

// WindowValues returns the values of every point with from < TS, oldest
// first (the whole series when from is negative). The part of the
// window the raw ring no longer covers is filled from rollup tiers:
// each contributing bucket adds its Min and Max, bracketing the true
// values at 2 points per bucket.
func (s *Series) WindowValues(from time.Duration) []float64 {
	if s.Len() == 0 {
		return nil
	}
	var out []float64
	if oldest := s.at(0).TS; len(s.tiers) > 0 && oldest > from {
		out = s.tierWindowValues(from, oldest)
	}
	for i := 0; i < s.n; i++ {
		p := s.at(i)
		if p.TS > from {
			out = append(out, p.Value)
		}
	}
	return out
}

// tierWindowValues covers (from, cut) from the rollup tiers: finer
// tiers claim the newest part of the gap, coarser tiers only the span
// finer ones no longer retain, so no region is double-counted.
func (s *Series) tierWindowValues(from, cut time.Duration) []float64 {
	limit := cut
	var segs [][]float64
	for _, t := range s.tiers {
		if t.n == 0 {
			continue
		}
		var vals []float64
		earliest := limit
		for i := 0; i < t.n; i++ {
			b := t.bucketAt(i)
			if b.Start <= from || b.Start >= limit {
				continue
			}
			vals = append(vals, b.Min, b.Max)
			if b.Start < earliest {
				earliest = b.Start
			}
		}
		if len(vals) > 0 {
			segs = append(segs, vals)
			limit = earliest
		}
	}
	// Assemble oldest-first: the coarsest contributing tier holds the
	// oldest span.
	var out []float64
	for i := len(segs) - 1; i >= 0; i-- {
		out = append(out, segs[i]...)
	}
	return out
}

// Quantile returns the p-quantile (0..100) of the values observed after
// from, using the same percentile math as the metrics histograms.
func (s *Series) Quantile(from time.Duration, p float64) (float64, bool) {
	vals := s.WindowValues(from)
	if len(vals) == 0 {
		return 0, false
	}
	return stats.Percentile(vals, p), true
}
