// Package timeseries is the virtual-clock history layer over the
// metrics registry: a Sampler periodically folds registry counters,
// gauges, and histogram quantiles — plus caller-supplied probes for
// derived quantities like sharing efficiency — into bounded ring-buffer
// Series, from which deltas, rates, and sliding-window percentiles are
// computed and CSV/JSON timelines exported. A Watchdog (watchdog.go)
// evaluates declarative SLO rules over the same series on the same
// clock and emits alert events into the causal journal.
//
// Everything here is a pure function of the workload: timestamps come
// from virtual clocks and values from deterministic instruments, so a
// fixed seed reproduces every exported timeline byte for byte — the
// property the memory-timeline experiment asserts.
package timeseries

import (
	"time"

	"repro/internal/stats"
)

// Point is one observation of a series.
type Point struct {
	TS    time.Duration
	Value float64
}

// Series is a bounded ring of points in ascending timestamp order.
// Appending past capacity drops the oldest point. Series are created
// and owned by a Sampler, which synchronizes access; the read methods
// here assume the caller holds whatever lock guards the series.
type Series struct {
	name  string
	buf   []Point
	start int
	n     int
}

func newSeries(name string, capacity int) *Series {
	return &Series{name: name, buf: make([]Point, capacity)}
}

// Name returns the series name (the registry metric name, a histogram
// derivative like "invoke_latency.p99", or a probe name).
func (s *Series) Name() string { return s.name }

// Len reports how many points are resident.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

func (s *Series) append(ts time.Duration, v float64) {
	if s.n == len(s.buf) {
		s.start = (s.start + 1) % len(s.buf)
		s.n--
	}
	s.buf[(s.start+s.n)%len(s.buf)] = Point{TS: ts, Value: v}
	s.n++
}

func (s *Series) at(i int) Point { return s.buf[(s.start+i)%len(s.buf)] }

// Points returns a copy of the resident points, oldest first.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	out := make([]Point, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.at(i))
	}
	return out
}

// Last returns the newest point (ok=false when empty).
func (s *Series) Last() (Point, bool) {
	if s.Len() == 0 {
		return Point{}, false
	}
	return s.at(s.n - 1), true
}

// baselineBefore returns the newest point with TS <= from, falling back
// to the oldest resident point when the window start predates history.
func (s *Series) baselineBefore(from time.Duration) (Point, bool) {
	if s.Len() == 0 {
		return Point{}, false
	}
	base := s.at(0)
	for i := 0; i < s.n; i++ {
		p := s.at(i)
		if p.TS > from {
			break
		}
		base = p
	}
	return base, true
}

// DeltaSince returns how much the series grew between the baseline at
// (or before) from and the newest point — the burn-rate numerator for
// counter-backed series. ok is false when fewer than two points exist.
func (s *Series) DeltaSince(from time.Duration) (float64, bool) {
	last, ok := s.Last()
	if !ok || s.Len() < 2 {
		return 0, false
	}
	base, _ := s.baselineBefore(from)
	return last.Value - base.Value, true
}

// RateSince returns the average growth per (virtual) second between the
// baseline at from and the newest point.
func (s *Series) RateSince(from time.Duration) (float64, bool) {
	last, ok := s.Last()
	if !ok || s.Len() < 2 {
		return 0, false
	}
	base, _ := s.baselineBefore(from)
	dt := last.TS - base.TS
	if dt <= 0 {
		return 0, false
	}
	return (last.Value - base.Value) / dt.Seconds(), true
}

// WindowValues returns the values of every point with from < TS, oldest
// first (the whole series when from is negative).
func (s *Series) WindowValues(from time.Duration) []float64 {
	if s.Len() == 0 {
		return nil
	}
	var out []float64
	for i := 0; i < s.n; i++ {
		p := s.at(i)
		if p.TS > from {
			out = append(out, p.Value)
		}
	}
	return out
}

// Quantile returns the p-quantile (0..100) of the values observed after
// from, using the same percentile math as the metrics histograms.
func (s *Series) Quantile(from time.Duration, p float64) (float64, bool) {
	vals := s.WindowValues(from)
	if len(vals) == 0 {
		return 0, false
	}
	return stats.Percentile(vals, p), true
}
