package timeseries

import (
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
)

// watchFixture builds a sampler fed by two loop counters plus a
// watchdog with a journal, the shape the gateway and the chaos
// experiment use.
func watchFixture() (*metrics.Registry, *events.Journal, *Sampler, *Watchdog, *int, *int) {
	reg := metrics.NewRegistry()
	j := events.NewJournal(256)
	requests, failures := new(int), new(int)
	s := NewSampler(reg, 0)
	s.AddProbe("requests_total", func() float64 { return float64(*requests) })
	s.AddProbe("failures_total", func() float64 { return float64(*failures) })
	w := NewWatchdog(s, j, reg)
	return reg, j, s, w, requests, failures
}

func TestWatchdogFireAndResolve(t *testing.T) {
	reg, j, s, w, requests, failures := watchFixture()
	w.AddRule(Rule{
		Name:      "invoke-success-rate",
		Ratio:     &RatioSource{Num: "failures_total", Den: "requests_total", Complement: true},
		Op:        AtLeast,
		Threshold: 0.99,
	})

	s.Sample(0) // zero baseline
	// 100 requests, 1 failure → 99% success: exactly at threshold, ok.
	*requests, *failures = 100, 1
	s.Sample(ms(1))
	if fired := w.Evaluate(ms(1)); len(fired) != 0 {
		t.Fatalf("fired at threshold: %v", fired)
	}
	// 10 more requests, 5 more failures → success 94/110+... < 99%.
	*requests, *failures = 110, 6
	s.Sample(ms(2))
	// Plant causal evidence: a traced error event.
	sc := j.NewScope("gateway", "invoke", ms(2))
	sc.Instant("gateway", "fail", ms(2), events.A("error", "boom"))
	sc.Close(ms(2))
	fired := w.Evaluate(ms(2))
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	a := fired[0]
	if a.Rule != "invoke-success-rate" || a.Op != ">=" || a.Threshold != 0.99 {
		t.Fatalf("alert = %+v", a)
	}
	if a.Link.Trace == 0 {
		t.Fatal("alert missing causal link")
	}
	if got := j.Trace(a.Link.Trace); len(got) == 0 {
		t.Fatal("alert link does not resolve to a trace")
	}
	if got := w.Firing(); len(got) != 1 || got[0] != "invoke-success-rate" {
		t.Fatalf("firing = %v", got)
	}
	// Still violated: no re-fire.
	if fired := w.Evaluate(ms(2)); len(fired) != 0 {
		t.Fatalf("re-fired while already firing: %v", fired)
	}
	// Recover: flood with successes.
	*requests = 2000
	s.Sample(ms(3))
	if fired := w.Evaluate(ms(3)); len(fired) != 0 {
		t.Fatalf("fired on recovery: %v", fired)
	}
	if got := w.Firing(); len(got) != 0 {
		t.Fatalf("still firing after recovery: %v", got)
	}
	if got := len(w.Alerts()); got != 1 {
		t.Fatalf("alert history = %d", got)
	}

	snap := reg.Snapshot()
	wantCounter := `slo_alerts_total{rule="invoke-success-rate"}`
	found := false
	for _, c := range snap.Counters {
		if c.Name == wantCounter && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing %s=1 in %v", wantCounter, snap.Counters)
	}
	for _, g := range snap.Gauges {
		if g.Name == `slo_rule_firing{rule="invoke-success-rate"}` && g.Value != 0 {
			t.Fatalf("firing gauge not reset: %d", g.Value)
		}
	}
	// An alert instant and a resolve instant landed in the journal.
	var alerts, resolves int
	for _, e := range j.Events() {
		if e.Component != "slo" {
			continue
		}
		switch e.Name {
		case "alert":
			alerts++
			if e.Link.Trace == 0 {
				t.Fatal("journal alert event lost its link")
			}
		case "resolve":
			resolves++
		}
	}
	if alerts != 1 || resolves != 1 {
		t.Fatalf("journal slo events: %d alerts, %d resolves", alerts, resolves)
	}
}

func TestWatchdogMinDenSuppression(t *testing.T) {
	_, _, s, w, requests, failures := watchFixture()
	w.AddRule(Rule{
		Name:      "rate",
		Ratio:     &RatioSource{Num: "failures_total", Den: "requests_total", Complement: true, MinDen: 50},
		Op:        AtLeast,
		Threshold: 0.99,
	})
	s.Sample(0)
	// 2 requests, both failures: 0% success — but below the MinDen floor.
	*requests, *failures = 2, 2
	s.Sample(ms(1))
	if fired := w.Evaluate(ms(1)); len(fired) != 0 {
		t.Fatalf("fired below MinDen: %v", fired)
	}
	// Past the floor the same ratio fires.
	*requests, *failures = 60, 30
	s.Sample(ms(2))
	if fired := w.Evaluate(ms(2)); len(fired) != 1 {
		t.Fatalf("did not fire past MinDen: %v", fired)
	}
}

func TestWatchdogValueRuleWithWindow(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(reg, 0)
	lat := 0.0
	s.AddProbe("p99_lat", func() float64 { return lat })
	w := NewWatchdog(s, nil, reg) // nil journal: alerts still recorded
	w.AddRule(Rule{
		Name:      "latency",
		Value:     &ValueSource{Series: "p99_lat", Quantile: 99},
		Op:        AtMost,
		Threshold: 100,
		Window:    2 * time.Millisecond,
	})
	for i := 1; i <= 3; i++ {
		lat = 50
		s.Sample(ms(i))
	}
	if fired := w.Evaluate(ms(3)); len(fired) != 0 {
		t.Fatalf("fired under threshold: %v", fired)
	}
	lat = 500
	s.Sample(ms(4))
	fired := w.Evaluate(ms(4))
	if len(fired) != 1 || fired[0].Value <= 100 {
		t.Fatalf("fired = %+v", fired)
	}
	// The 500 sample ages out of the 2ms window.
	lat = 50
	s.Sample(ms(5))
	s.Sample(ms(7))
	w.Evaluate(ms(7))
	if got := w.Firing(); len(got) != 0 {
		t.Fatalf("still firing after window aged out: %v", got)
	}
}

func TestWatchdogSkipsRulesWithoutData(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(reg, 0)
	w := NewWatchdog(s, nil, reg)
	w.AddRule(Rule{
		Name:      "nodata",
		Value:     &ValueSource{Series: "missing"},
		Op:        AtLeast,
		Threshold: 1,
	})
	if fired := w.Evaluate(ms(1)); len(fired) != 0 {
		t.Fatalf("fired with no data: %v", fired)
	}
}

func TestWatchdogAddRulePanicsOnBadSources(t *testing.T) {
	reg := metrics.NewRegistry()
	w := NewWatchdog(NewSampler(reg, 0), nil, reg)
	for _, r := range []Rule{
		{Name: "neither"},
		{Name: "both", Ratio: &RatioSource{}, Value: &ValueSource{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddRule(%s) did not panic", r.Name)
				}
			}()
			w.AddRule(r)
		}()
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Name: "sr", Ratio: &RatioSource{}, Op: AtLeast, Threshold: 0.99, Window: 2 * time.Second}
	if got := r.String(); got != "sr >= 0.99 over 2s" {
		t.Fatalf("String = %q", got)
	}
	r.Window = 0
	if got := r.String(); got != "sr >= 0.99 over all history" {
		t.Fatalf("String = %q", got)
	}
}
