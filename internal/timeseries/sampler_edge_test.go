package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// Satellite coverage: probe error paths. A panicking probe or one
// returning a non-finite value is skipped and counted, and the other
// probes still sample.
func TestProbeErrorsAreFencedAndCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(reg, 16)
	s.AddProbe("good", func() float64 { return 1 })
	s.AddProbe("panics", func() float64 { panic("probe broke") })
	s.AddProbe("nan", func() float64 { return math.NaN() })
	s.AddProbe("inf", func() float64 { return math.Inf(1) })
	s.AddProbe("also_good", func() float64 { return 2 })

	for i := 0; i < 3; i++ {
		s.Sample(time.Duration(i) * time.Second)
	}
	if p, ok := s.Last("good"); !ok || p.Value != 1 {
		t.Fatalf("good probe lost: %+v ok=%v", p, ok)
	}
	if p, ok := s.Last("also_good"); !ok || p.Value != 2 {
		t.Fatalf("probe after the panicking one lost: %+v ok=%v", p, ok)
	}
	for _, bad := range []string{"panics", "nan", "inf"} {
		if _, ok := s.Last(bad); ok {
			t.Fatalf("broken probe %q produced points", bad)
		}
		got := reg.Counter(metrics.Name("timeseries_probe_errors_total", "probe", bad)).Value()
		if got != 3 {
			t.Fatalf("probe_errors{%s} = %d, want 3", bad, got)
		}
	}
	if got := reg.Counter(metrics.Name("timeseries_probe_errors_total", "probe", "good")).Value(); got != 0 {
		t.Fatalf("healthy probe counted errors: %d", got)
	}
}

// Satellite coverage: the Sampler read methods on a series that does
// not exist are ok=false, not a panic.
func TestSamplerUnknownSeries(t *testing.T) {
	s := NewSampler(metrics.NewRegistry(), 16)
	if _, ok := s.Delta("missing", 0); ok {
		t.Fatal("Delta on unknown series reported ok")
	}
	if _, ok := s.Rate("missing", 0); ok {
		t.Fatal("Rate on unknown series reported ok")
	}
	if _, ok := s.Quantile("missing", 0, 99); ok {
		t.Fatal("Quantile on unknown series reported ok")
	}
	if _, ok := s.Last("missing"); ok {
		t.Fatal("Last on unknown series reported ok")
	}
}

// Satellite coverage: CSV export of an empty sampler and of
// single-point series.
func TestWriteCSVEmptyAndSinglePoint(t *testing.T) {
	empty := NewSampler(metrics.NewRegistry(), 16)
	var buf bytes.Buffer
	if err := empty.WriteCSV(&buf); err != nil {
		t.Fatalf("empty CSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 || lines[0] != "ts_ns" {
		t.Fatalf("empty CSV = %q", buf.String())
	}

	reg := metrics.NewRegistry()
	single := NewSampler(reg, 16)
	single.AddProbe("one", func() float64 { return 42 })
	single.Sample(time.Millisecond)
	buf.Reset()
	if err := single.WriteCSV(&buf); err != nil {
		t.Fatalf("single-point CSV: %v", err)
	}
	got := buf.String()
	lines = strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("single-point CSV has %d lines:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "one") {
		t.Fatalf("header missing series: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1000000,") || !strings.Contains(lines[1], "42") {
		t.Fatalf("single-point row = %q", lines[1])
	}
}
