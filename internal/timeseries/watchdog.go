package timeseries

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
)

// Op is the comparison direction of a rule.
type Op int

// Rule operators: the measured value must stay AtLeast (≥) or AtMost
// (≤) the threshold; a rule fires when the bound is violated.
const (
	AtLeast Op = iota
	AtMost
)

func (o Op) String() string {
	if o == AtLeast {
		return ">="
	}
	return "<="
}

// RatioSource measures a rule as the ratio of two series' deltas over
// the rule's window — the burn-rate shape (errors/requests over the
// last N virtual seconds). With Complement the measured value is
// 1 - num/den, turning an error ratio into a success rate.
type RatioSource struct {
	Num, Den   string
	Complement bool
	// MinDen suppresses evaluation until the denominator's window delta
	// reaches this floor, so a rule never fires off two requests.
	MinDen float64
}

// ValueSource measures a rule directly from one series: the newest
// point, or (with Quantile > 0) a sliding-window percentile — p99
// latency over the last minute, sharing efficiency right now.
type ValueSource struct {
	Series   string
	Quantile float64 // 0 = newest value; else percentile 0..100
}

// Rule is one declarative SLO: a measurement (exactly one of Ratio or
// Value), an operator, a threshold, and a burn-rate window (<= 0 means
// the entire retained history).
type Rule struct {
	Name      string
	Ratio     *RatioSource
	Value     *ValueSource
	Op        Op
	Threshold float64
	Window    time.Duration
}

// String renders the rule's contract, e.g.
// "invoke-success-rate >= 0.99 over 2s".
func (r Rule) String() string {
	w := "all history"
	if r.Window > 0 {
		w = r.Window.String()
	}
	return fmt.Sprintf("%s %s %s over %s", r.Name, r.Op, formatFloat(r.Threshold), w)
}

// Alert is one firing of a rule.
type Alert struct {
	Rule      string        `json:"rule"`
	At        time.Duration `json:"at_ns"`
	Value     float64       `json:"value"`
	Threshold float64       `json:"threshold"`
	Op        string        `json:"op"`
	// Ref is the alert's own journal instant; Link the causal evidence
	// it points at (the most recent error-carrying trace event), which
	// GET /trace/{Link.Trace} resolves.
	Ref  events.Ref `json:"ref"`
	Link events.Ref `json:"link"`
}

type ruleState struct {
	rule   Rule
	firing bool
	fired  *metrics.Counter
	gauge  *metrics.Gauge
}

// Watchdog evaluates SLO rules against a sampler's series on the
// virtual clock. A rule transition into violation emits an "slo alert"
// instant into the event journal, causally linked to the most recent
// error evidence so the alert joins the trace that broke the SLO; the
// transition back emits an "slo resolve" instant. Safe for concurrent
// use.
type Watchdog struct {
	mu       sync.Mutex
	sampler  *Sampler
	journal  *events.Journal
	reg      *metrics.Registry
	rules    []*ruleState
	alerts   []Alert
	evidence func() events.Ref
}

// NewWatchdog builds a watchdog over a sampler, emitting alert events
// into journal (nil is fine: alerts are still recorded and returned)
// and per-rule slo_alerts_total / slo_rule_firing metrics into reg.
// The default evidence finder links each alert to the newest journal
// event that carries an "error" attribute inside a trace.
func NewWatchdog(s *Sampler, journal *events.Journal, reg *metrics.Registry) *Watchdog {
	w := &Watchdog{sampler: s, journal: journal, reg: reg}
	w.evidence = func() events.Ref { return LastErrorEvidence(journal) }
	return w
}

// SetEvidence replaces the causal-evidence finder consulted when an
// alert fires.
func (w *Watchdog) SetEvidence(fn func() events.Ref) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evidence = fn
}

// LastErrorEvidence scans the journal newest-first for an in-trace
// event carrying an "error" attribute — the default causal anchor for
// an alert (the failure closest to the SLO breach).
func LastErrorEvidence(j *events.Journal) events.Ref {
	evs := j.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		e := evs[i]
		if e.Trace == 0 {
			continue
		}
		for _, a := range e.Attrs {
			if a.Key == "error" {
				return events.Ref{Trace: e.Trace, Span: e.Span}
			}
		}
	}
	return events.Ref{}
}

// AddRule registers a rule. Exactly one of Ratio or Value must be set.
func (w *Watchdog) AddRule(r Rule) {
	if (r.Ratio == nil) == (r.Value == nil) {
		panic(fmt.Sprintf("timeseries: rule %q must set exactly one of Ratio or Value", r.Name))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rules = append(w.rules, &ruleState{
		rule:  r,
		fired: w.reg.Counter(metrics.Name("slo_alerts_total", "rule", r.Name)),
		gauge: w.reg.Gauge(metrics.Name("slo_rule_firing", "rule", r.Name)),
	})
}

// Rules returns the registered rules in registration order.
func (w *Watchdog) Rules() []Rule {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Rule, 0, len(w.rules))
	for _, rs := range w.rules {
		out = append(out, rs.rule)
	}
	return out
}

// Alerts returns every alert fired so far, oldest first.
func (w *Watchdog) Alerts() []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Alert(nil), w.alerts...)
}

// Firing returns the names of the rules currently in violation.
func (w *Watchdog) Firing() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, rs := range w.rules {
		if rs.firing {
			out = append(out, rs.rule.Name)
		}
	}
	return out
}

// Evaluate measures every rule at virtual time now and returns the
// alerts that fired on this evaluation (ok→violated transitions).
// Rules whose sources lack data are skipped, not fired.
func (w *Watchdog) Evaluate(now time.Duration) []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	var fired []Alert
	for _, rs := range w.rules {
		v, ok := w.measure(rs.rule, now)
		if !ok {
			continue
		}
		violated := false
		switch rs.rule.Op {
		case AtLeast:
			violated = v < rs.rule.Threshold
		case AtMost:
			violated = v > rs.rule.Threshold
		}
		switch {
		case violated && !rs.firing:
			rs.firing = true
			rs.fired.Inc()
			rs.gauge.Set(1)
			link := w.evidence()
			ref := w.journal.InstantLinked("slo", "alert", now, link,
				events.A("rule", rs.rule.Name),
				events.A("contract", rs.rule.String()),
				events.A("value", formatFloat(v)))
			a := Alert{
				Rule: rs.rule.Name, At: now, Value: v,
				Threshold: rs.rule.Threshold, Op: rs.rule.Op.String(),
				Ref: ref, Link: link,
			}
			w.alerts = append(w.alerts, a)
			fired = append(fired, a)
		case !violated && rs.firing:
			rs.firing = false
			rs.gauge.Set(0)
			w.journal.Instant("slo", "resolve", now,
				events.A("rule", rs.rule.Name),
				events.A("value", formatFloat(v)))
		}
	}
	return fired
}

// measure computes a rule's current value; ok is false when the
// backing series do not yet hold enough data.
func (w *Watchdog) measure(r Rule, now time.Duration) (float64, bool) {
	from := windowStart(now, r.Window)
	if r.Ratio != nil {
		den, ok := w.sampler.Delta(r.Ratio.Den, from)
		if !ok || den <= 0 || den < r.Ratio.MinDen {
			return 0, false
		}
		num, ok := w.sampler.Delta(r.Ratio.Num, from)
		if !ok {
			return 0, false
		}
		v := num / den
		if r.Ratio.Complement {
			v = 1 - v
		}
		return v, true
	}
	if r.Value.Quantile > 0 {
		return w.sampler.Quantile(r.Value.Series, from, r.Value.Quantile)
	}
	p, ok := w.sampler.Last(r.Value.Series)
	if !ok {
		return 0, false
	}
	return p.Value, true
}
