package vmm

import "time"

// Calibrated virtual-time costs for microVM lifecycle operations.
//
// The absolute values are chosen so the latency *ratios* of the paper's
// Figures 6-7 hold on the simulated stack (see DESIGN.md §4 for the
// targets and EXPERIMENTS.md for the measured outcome):
//
//   - Firecracker cold boot (create + kernel boot + runtime launch)
//     lands around 1.5 s for a Node.js function, ~130x the Fireworks
//     snapshot-restore path (~12 ms), matching the "up to 133x" claim.
//   - Warm resume is ~45 ms, 3.6-3.8x the Fireworks path.
//   - Snapshot creation time is dominated by writing guest memory, so a
//     ~235 MiB post-JIT image costs ~0.4 s, inside the paper's
//     0.36-0.47 s band.
const (
	// CostVMCreate covers spawning the Firecracker process, its API
	// socket, and device setup.
	CostVMCreate = 150 * time.Millisecond
	// CostKernelBoot is the guest kernel boot to init.
	CostKernelBoot = 1100 * time.Millisecond
	// CostWarmResume resumes a paused (in-memory) microVM.
	CostWarmResume = 44 * time.Millisecond
	// CostNetNSSetup creates a network namespace, tap device, and NAT
	// rule for one VM (§3.5).
	CostNetNSSetup = 1500 * time.Microsecond

	// CostSnapshotBase is the fixed part of snapshot creation
	// (pausing the VM, serializing device state); the variable part is
	// CostSnapshotPerByte over guest memory written.
	CostSnapshotBase    = 150 * time.Millisecond
	CostSnapshotPerByte = 1 * time.Nanosecond

	// CostRestoreBase is the fixed part of resuming from a snapshot
	// file: mmap the memory file (MAP_PRIVATE), restore device state,
	// resume vCPUs. Page contents load lazily; each page of the
	// eagerly-faulted working set costs CostRestorePerPage. With
	// REAP-style prefetching the per-page cost drops (sequential I/O
	// instead of random page faults).
	CostRestoreBase        = 6 * time.Millisecond
	CostRestorePerPage     = 480 * time.Nanosecond
	CostRestorePerPageREAP = 160 * time.Nanosecond

	// CostMMDSAccess is one guest read of the metadata service.
	CostMMDSAccess = 180 * time.Microsecond

	// CostVMMOverheadBytes is host-side memory attributed to each
	// Firecracker process (VMM heap, virtio queues).
	CostVMMOverheadBytes = 3 << 20
	// CostNetOverheadBytes is per-VM host memory for netns/conntrack.
	CostNetOverheadBytes = 1 << 20
	// CostKernelBytes is the guest kernel + boot working set of a
	// freshly booted microVM. Calibrated so a fresh Node.js Firecracker
	// guest totals ~228 MiB (kernel + runtime 64 MiB + libraries 46 MiB
	// + heap ~11 MiB + VMM/net overhead 4 MiB), which reproduces §5.4's
	// 337 microVMs before the 76.8 GiB swap threshold.
	CostKernelBytes = 103 << 20
)
