// Package vmm is the simulated Firecracker: a lightweight hypervisor
// managing microVMs with guest-physical memory (backed by internal/mem),
// an in-guest filesystem, the microVM Metadata Service (MMDS), VM-level
// snapshot/restore with copy-on-write page sharing, pause/resume for
// warm pools, and per-VM network namespace plumbing (internal/netsim).
//
// Virtual-time costs of every lifecycle operation are defined in
// costs.go and calibrated against the paper's start-up measurements.
package vmm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/vclock"
)

// State is a microVM lifecycle state.
type State int

// MicroVM states.
const (
	StateCreated State = iota
	StateRunning
	StatePaused
	StateStopped
)

var stateNames = [...]string{"created", "running", "paused", "stopped"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "invalid"
}

// Errors returned by the hypervisor.
var (
	ErrBadState = errors.New("vmm: operation invalid in current state")
	ErrNoVM     = errors.New("vmm: no such microVM")
)

// Config sizes a microVM; the defaults follow the paper's evaluation
// setup (1 vCPU, 512 MiB memory, 2 GiB disk).
type Config struct {
	VCPUs     int
	MemBytes  uint64
	DiskBytes uint64
}

// DefaultConfig is the paper's microVM configuration.
func DefaultConfig() Config {
	return Config{VCPUs: 1, MemBytes: 512 << 20, DiskBytes: 2 << 30}
}

// Hypervisor manages microVMs on one host.
type Hypervisor struct {
	Host   *mem.Host
	Router *netsim.Router

	mu     sync.Mutex
	vms    map[string]*MicroVM
	nextID int

	// faults, when attached, injects failures at the vmm.boot and
	// vmm.restore sites (nil-safe).
	faults *faults.Plane

	// Observability (nil-safe; see Instrument).
	liveVMs     *metrics.Gauge
	boots       *metrics.Counter
	bootDur     *metrics.Histogram
	restores    *metrics.Counter
	restoreDur  *metrics.Histogram
	snapshots   *metrics.Counter
	snapshotDur *metrics.Histogram
	warmResumes *metrics.Counter
}

// New returns a hypervisor on the given host and network router.
func New(host *mem.Host, router *netsim.Router) *Hypervisor {
	return &Hypervisor{Host: host, Router: router, vms: make(map[string]*MicroVM)}
}

// Instrument attaches the hypervisor to a metrics registry: live VM
// count, kernel boots (the cold path), snapshot restores with their
// latency histogram (the paper's headline quantity — Figure 6's ~12 ms
// Fireworks start-up), and snapshot captures.
func (h *Hypervisor) Instrument(reg *metrics.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.liveVMs = reg.Gauge("vmm_live_vms")
	h.boots = reg.Counter("vmm_kernel_boots_total")
	h.bootDur = reg.Histogram("vmm_kernel_boot_duration")
	h.restores = reg.Counter("vmm_snapshot_restores_total")
	h.restoreDur = reg.Histogram("vmm_snapshot_restore_duration")
	h.snapshots = reg.Counter("vmm_snapshots_taken_total")
	h.snapshotDur = reg.Histogram("vmm_snapshot_capture_duration")
	h.warmResumes = reg.Counter("vmm_warm_resumes_total")
}

// AttachFaults connects the hypervisor to a fault-injection plane:
// kernel boots and snapshot restores consult it before doing work.
func (h *Hypervisor) AttachFaults(p *faults.Plane) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faults = p
}

// MicroVM is one simulated Firecracker microVM.
type MicroVM struct {
	ID     string
	Config Config
	FS     *fs.MemFS

	hv    *Hypervisor
	state State
	space *mem.Space
	mmds  map[string]string

	// Network plumbing (nil until SetupNetwork).
	Namespace *netsim.Namespace
	Tap       *netsim.Tap
	External  netsim.Addr
	GuestIP   netsim.Addr

	// booted tracks whether the guest kernel has booted (fresh boot or
	// via snapshot restore).
	booted bool
	// fromSnapshot records the snapshot this VM was restored from.
	fromSnapshot *Snapshot
	// regions maps content kinds to the snapshot regions this VM has
	// mapped, so execution dirtying can CoW-split the right pages.
	mapped []*mem.Region
	// dirtyCursor tracks how many bytes of mapped snapshot memory this
	// VM has already dirtied.
	dirtyCursor uint64
}

// State returns the VM's lifecycle state.
func (v *MicroVM) State() State { return v.state }

// Space exposes the VM's guest-physical address space for memory
// accounting (PSS/RSS measurements by the experiment harness).
func (v *MicroVM) Space() *mem.Space { return v.space }

// RestoredFrom returns the snapshot this VM was resumed from, or nil.
func (v *MicroVM) RestoredFrom() *Snapshot { return v.fromSnapshot }

// CreateVM creates a stopped microVM shell (the Firecracker process and
// API socket), charging the create cost to clock.
func (h *Hypervisor) CreateVM(cfg Config, clock *vclock.Clock) (*MicroVM, error) {
	if cfg.VCPUs <= 0 || cfg.MemBytes == 0 {
		return nil, fmt.Errorf("vmm: invalid config %+v", cfg)
	}
	h.mu.Lock()
	h.nextID++
	id := fmt.Sprintf("fc-%04d", h.nextID)
	h.mu.Unlock()

	clock.Advance(CostVMCreate)
	v := &MicroVM{
		ID:     id,
		Config: cfg,
		FS:     fs.NewMemFS(),
		hv:     h,
		state:  StateCreated,
		space:  h.Host.NewSpace(id),
		mmds:   make(map[string]string),
	}
	// VMM process overhead (Firecracker process + virtio queues).
	v.space.AllocPrivate(mem.KindAnon, mem.PagesFor(CostVMMOverheadBytes))
	h.mu.Lock()
	h.vms[id] = v
	h.mu.Unlock()
	h.liveVMs.Add(1)
	return v, nil
}

// BootKernel boots the guest kernel in a freshly created VM (the cold
// path), charging boot time and allocating the kernel's private pages.
func (v *MicroVM) BootKernel(clock *vclock.Clock) error {
	return v.BootKernelTraced(clock, nil)
}

// BootKernelTraced is BootKernel under an event scope: the boot emits a
// "vmm" event (and any injected fault emits its own at the boot site).
func (v *MicroVM) BootKernelTraced(clock *vclock.Clock, sc *events.Scope) error {
	if v.state != StateCreated {
		return fmt.Errorf("%w: boot in %s", ErrBadState, v.state)
	}
	if err := v.hv.faults.InjectTraced(faults.SiteVMMBoot, clock, sc, 0); err != nil {
		return fmt.Errorf("vmm: boot of %s: %w", v.ID, err)
	}
	clock.Advance(CostKernelBoot)
	v.hv.boots.Inc()
	v.hv.bootDur.ObserveDurationExemplar(CostKernelBoot, uint64(sc.TraceID()), clock.Now())
	v.space.AllocPrivate(mem.KindKernel, mem.PagesFor(CostKernelBytes))
	v.booted = true
	v.state = StateRunning
	sc.Instant("vmm", "boot", clock.Now(), events.A("vm", v.ID))
	return nil
}

// AllocGuest allocates private guest memory of a kind (runtime image,
// libraries, heap) — the fresh-boot path where nothing is shared.
func (v *MicroVM) AllocGuest(kind mem.Kind, bytes uint64) error {
	if v.state != StateRunning {
		return fmt.Errorf("%w: alloc in %s", ErrBadState, v.state)
	}
	v.space.AllocPrivate(kind, mem.PagesFor(bytes))
	return nil
}

// Pause keeps the VM resident but not running (the warm-pool state).
func (v *MicroVM) Pause() error {
	if v.state != StateRunning {
		return fmt.Errorf("%w: pause in %s", ErrBadState, v.state)
	}
	v.state = StatePaused
	return nil
}

// ResumeWarm resumes a paused VM, charging the warm-start cost.
func (v *MicroVM) ResumeWarm(clock *vclock.Clock) error {
	return v.ResumeWarmTraced(clock, nil)
}

// ResumeWarmTraced is ResumeWarm under an event scope.
func (v *MicroVM) ResumeWarmTraced(clock *vclock.Clock, sc *events.Scope) error {
	if v.state != StatePaused {
		return fmt.Errorf("%w: warm resume in %s", ErrBadState, v.state)
	}
	clock.Advance(CostWarmResume)
	v.state = StateRunning
	v.hv.warmResumes.Inc()
	sc.Instant("vmm", "warm-resume", clock.Now(), events.A("vm", v.ID))
	return nil
}

// Stop tears the VM down, releasing its memory and network namespace.
func (v *MicroVM) Stop() error {
	if v.state == StateStopped {
		return fmt.Errorf("%w: stop in %s", ErrBadState, v.state)
	}
	v.state = StateStopped
	v.space.Free()
	if v.Namespace != nil {
		if err := v.hv.Router.DeleteNamespace(v.Namespace.Name()); err != nil {
			return err
		}
		v.Namespace = nil
	}
	v.hv.mu.Lock()
	delete(v.hv.vms, v.ID)
	v.hv.mu.Unlock()
	v.hv.liveVMs.Add(-1)
	return nil
}

// SetMMDS stores metadata visible to the guest via the MMDS endpoint;
// this is how Fireworks tells a resumed clone its instance identity
// (fcID) without touching the snapshotted memory.
func (v *MicroVM) SetMMDS(key, value string) { v.mmds[key] = value }

// MMDS reads guest-visible metadata.
func (v *MicroVM) MMDS(key string) (string, bool) {
	val, ok := v.mmds[key]
	return val, ok
}

// VMCount returns the number of live microVMs.
func (h *Hypervisor) VMCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vms)
}

// SetupNetwork gives the VM its own network namespace, tap device, and
// NAT rule (§3.5). Every VM restored from the same snapshot has the
// same guest IP; isolation comes from the per-VM namespace. The cost is
// charged to clock.
func (h *Hypervisor) SetupNetwork(v *MicroVM, guestIP netsim.Addr, clock *vclock.Clock) error {
	if v.Namespace != nil {
		return fmt.Errorf("vmm: %s already has a namespace", v.ID)
	}
	clock.Advance(CostNetNSSetup)
	ns, err := h.Router.CreateNamespace("ns-" + v.ID)
	if err != nil {
		return err
	}
	tap := &netsim.Tap{Name: "tap0", Guest: guestIP, MAC: "AA:FC:00:00:00:01"}
	if err := h.Router.AttachTap(ns, tap); err != nil {
		_ = h.Router.DeleteNamespace(ns.Name())
		return err
	}
	ext, err := h.Router.AllocExternal(ns, guestIP)
	if err != nil {
		// Release the half-built namespace; the caller only tears down
		// network state it was actually handed.
		_ = h.Router.DeleteNamespace(ns.Name())
		return err
	}
	v.Namespace = ns
	v.Tap = tap
	v.External = ext
	v.GuestIP = guestIP
	// Conntrack and tap buffers are host-side but attributed to the VM.
	v.space.AllocPrivate(mem.KindAnon, mem.PagesFor(CostNetOverheadBytes))
	return nil
}

// DirtyDuringExecution models the guest writing bytes of *new* memory
// while running: pages mapped from a snapshot are CoW-split first (in
// region order), any remainder becomes fresh private heap. Pages this
// VM already dirtied do not consume the budget — dirtying N bytes grows
// the VM's private footprint by N bytes. For fresh-boot VMs (nothing
// mapped) it all lands as private heap. Calling it repeatedly
// accumulates, matching long-running guests dirtying more over time.
func (v *MicroVM) DirtyDuringExecution(bytes uint64) {
	if v.state != StateRunning {
		return
	}
	remaining := mem.PagesFor(bytes)
	// CoW-split mapped snapshot pages beyond what we already dirtied.
	cursor := int(v.dirtyCursor / mem.PageSize)
	for _, r := range v.mapped {
		if remaining == 0 {
			break
		}
		if cursor >= r.Pages() {
			cursor -= r.Pages()
			continue
		}
		for p := cursor; p < r.Pages() && remaining > 0; p++ {
			if v.space.DirtyPage(r, p) {
				remaining--
			}
			v.dirtyCursor += mem.PageSize
		}
		cursor = 0
	}
	if remaining > 0 {
		v.space.AllocPrivate(mem.KindHeap, remaining)
	}
}

// DirtyKind models the guest writing bytes into memory of one content
// kind: pages of mapped snapshot regions of that kind are CoW-split
// first; any remainder becomes private memory of that kind. Used for
// targeted dirtying (heap churn; Numba's MCJIT re-linking of duplicated
// JIT modules on resume, §5.5.2).
func (v *MicroVM) DirtyKind(kind mem.Kind, bytes uint64) {
	if v.state != StateRunning || bytes == 0 {
		return
	}
	remaining := mem.PagesFor(bytes)
	for _, r := range v.mapped {
		if remaining == 0 {
			return
		}
		if r.Kind() != kind {
			continue
		}
		n := r.Pages()
		if n > remaining {
			n = remaining
		}
		faulted := v.space.DirtyPages(r, n)
		remaining -= n
		_ = faulted
	}
	if remaining > 0 {
		v.space.AllocPrivate(kind, remaining)
	}
}
