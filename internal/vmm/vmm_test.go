package vmm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/vclock"
)

func newHV() *Hypervisor {
	return New(mem.NewHost(64<<30, 0.6), netsim.NewRouter(1024))
}

func TestVMLifecycle(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	v, err := hv.CreateVM(DefaultConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if v.State() != StateCreated {
		t.Fatalf("state = %v", v.State())
	}
	if clock.Now() != CostVMCreate {
		t.Fatalf("create cost = %v", clock.Now())
	}
	if err := v.BootKernel(clock); err != nil {
		t.Fatal(err)
	}
	if v.State() != StateRunning {
		t.Fatalf("state = %v", v.State())
	}
	if clock.Now() != CostVMCreate+CostKernelBoot {
		t.Fatalf("boot cost = %v", clock.Now())
	}
	if err := v.Pause(); err != nil {
		t.Fatal(err)
	}
	warmMark := clock.Now()
	if err := v.ResumeWarm(clock); err != nil {
		t.Fatal(err)
	}
	if clock.Since(warmMark) != CostWarmResume {
		t.Fatalf("warm resume cost = %v", clock.Since(warmMark))
	}
	if err := v.Stop(); err != nil {
		t.Fatal(err)
	}
	if hv.VMCount() != 0 {
		t.Fatalf("VMCount = %d", hv.VMCount())
	}
	if hv.Host.Used() != 0 {
		t.Fatalf("leaked %d bytes", hv.Host.Used())
	}
}

func TestStateMachineRejectsBadTransitions(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	v, _ := hv.CreateVM(DefaultConfig(), clock)
	if err := v.Pause(); !errors.Is(err, ErrBadState) {
		t.Fatalf("pause before boot: %v", err)
	}
	if err := v.ResumeWarm(clock); !errors.Is(err, ErrBadState) {
		t.Fatalf("resume before pause: %v", err)
	}
	v.BootKernel(clock)
	if err := v.BootKernel(clock); !errors.Is(err, ErrBadState) {
		t.Fatalf("double boot: %v", err)
	}
	v.Stop()
	if err := v.Stop(); !errors.Is(err, ErrBadState) {
		t.Fatalf("double stop: %v", err)
	}
}

func TestInvalidConfig(t *testing.T) {
	hv := newHV()
	if _, err := hv.CreateVM(Config{}, vclock.New()); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestKernelBootAllocatesMemory(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	v, _ := hv.CreateVM(DefaultConfig(), clock)
	before := hv.Host.Used()
	v.BootKernel(clock)
	grown := hv.Host.Used() - before
	if grown != uint64(mem.PagesFor(CostKernelBytes))*mem.PageSize {
		t.Fatalf("kernel pages = %d bytes", grown)
	}
	if err := v.AllocGuest(mem.KindRuntime, 64<<20); err != nil {
		t.Fatal(err)
	}
	if v.Space().PrivatePages(mem.KindRuntime) != mem.PagesFor(64<<20) {
		t.Fatal("runtime alloc not accounted")
	}
}

func TestMMDS(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	v, _ := hv.CreateVM(DefaultConfig(), clock)
	v.SetMMDS("fcID", "fc42")
	got, ok := v.MMDS("fcID")
	if !ok || got != "fc42" {
		t.Fatalf("MMDS = %q %v", got, ok)
	}
	if _, ok := v.MMDS("missing"); ok {
		t.Fatal("phantom MMDS key")
	}
	mark := clock.Now()
	v.ReadMMDSWithCost("fcID", clock)
	if clock.Since(mark) != CostMMDSAccess {
		t.Fatalf("MMDS cost = %v", clock.Since(mark))
	}
}

func TestSetupNetwork(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	v, _ := hv.CreateVM(DefaultConfig(), clock)
	v.BootKernel(clock)
	if err := hv.SetupNetwork(v, "192.168.0.2", clock); err != nil {
		t.Fatal(err)
	}
	if v.External == "" || v.Namespace == nil || v.Tap == nil {
		t.Fatalf("network incomplete: %+v", v)
	}
	if err := hv.SetupNetwork(v, "192.168.0.2", clock); err == nil {
		t.Fatal("double network setup accepted")
	}
	// Teardown releases the namespace.
	v.Stop()
	if hv.Router.NamespaceCount() != 0 {
		t.Fatal("namespace leaked")
	}
}

func takeTestSnapshot(t *testing.T, hv *Hypervisor, clock *vclock.Clock) *Snapshot {
	t.Helper()
	v, _ := hv.CreateVM(DefaultConfig(), clock)
	v.BootKernel(clock)
	snap, err := hv.TakeSnapshot(v, SnapPostJIT, []RegionSpec{
		{Kind: mem.KindHeap, Bytes: 8 << 20},
		{Kind: mem.KindKernel, Bytes: CostKernelBytes},
		{Kind: mem.KindRuntime, Bytes: 64 << 20},
	}, 32<<20, "guest-state", clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Stop(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestSnapshotCreation(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	mark := clock.Now()
	snap := takeTestSnapshot(t, hv, clock)
	_ = mark
	wantBytes := uint64(8<<20) + CostKernelBytes + 64<<20
	if snap.TotalBytes() != wantBytes {
		t.Fatalf("TotalBytes = %d, want %d", snap.TotalBytes(), wantBytes)
	}
	if snap.GuestState != "guest-state" {
		t.Fatal("guest state lost")
	}
	if snap.Sharers() != 0 {
		t.Fatalf("fresh snapshot sharers = %d", snap.Sharers())
	}
	if len(snap.Specs()) != 3 {
		t.Fatalf("specs = %v", snap.Specs())
	}
}

func TestSnapshotRejectsOversize(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	v, _ := hv.CreateVM(Config{VCPUs: 1, MemBytes: 64 << 20, DiskBytes: 1 << 30}, clock)
	v.BootKernel(clock)
	_, err := hv.TakeSnapshot(v, SnapOSOnly,
		[]RegionSpec{{Kind: mem.KindKernel, Bytes: 128 << 20}}, 0, nil, clock)
	if err == nil {
		t.Fatal("snapshot larger than guest memory accepted")
	}
	if _, err := hv.TakeSnapshot(v, SnapOSOnly, nil, 0, nil, clock); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}

func TestRestoreSharesMemoryCoW(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	snap := takeTestSnapshot(t, hv, clock)
	baseline := hv.Host.Used()

	a, err := hv.Restore(snap, RestoreOptions{}, clock)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := hv.Host.Used()
	b, err := hv.Restore(snap, RestoreOptions{}, clock)
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := hv.Host.Used()

	// First restore materializes the image + VMM overhead; the second
	// adds only VMM overhead.
	firstGrowth := afterFirst - baseline
	secondGrowth := afterSecond - afterFirst
	if firstGrowth <= snap.TotalBytes() {
		t.Fatalf("first restore grew %d, want > image size %d", firstGrowth, snap.TotalBytes())
	}
	if secondGrowth >= snap.TotalBytes()/10 {
		t.Fatalf("second restore grew %d — not sharing", secondGrowth)
	}
	if snap.Sharers() != 2 {
		t.Fatalf("sharers = %d", snap.Sharers())
	}
	if a.State() != StateRunning || b.State() != StateRunning {
		t.Fatal("restored VMs not running")
	}
	if a.RestoredFrom() != snap {
		t.Fatal("provenance lost")
	}

	// Dirtying in one clone must not affect the other's view.
	a.DirtyDuringExecution(4 << 20)
	if b.Space().PSS() > a.Space().PSS() {
		t.Fatal("clean clone has more PSS than dirty clone")
	}
	a.Stop()
	b.Stop()
	if hv.Host.Used() != baseline {
		t.Fatalf("leak after stops: %d vs %d", hv.Host.Used(), baseline)
	}
}

func TestRestoreCostAndREAP(t *testing.T) {
	hv := newHV()
	setup := vclock.New()
	snap := takeTestSnapshot(t, hv, setup)

	// First restore demand-pages the full resident set and records the
	// working set actually touched.
	demand := vclock.New()
	v1, _ := hv.Restore(snap, RestoreOptions{}, demand)
	pages := mem.PagesFor(32 << 20)
	want := CostRestoreBase + time.Duration(pages)*CostRestorePerPage
	if demand.Now() != want {
		t.Fatalf("restore cost = %v, want %v", demand.Now(), want)
	}
	v1.DirtyDuringExecution(4 << 20)
	rec := snap.RecordWorkingSet(v1)
	if len(rec.ChunkIDs) == 0 || rec.Pages == 0 {
		t.Fatalf("empty working-set record: %+v", rec)
	}
	if snap.WorkingSet() != rec {
		t.Fatal("record not kept on the snapshot")
	}

	// Replaying the record prefetches with sequential reads — cheaper
	// than demand-faulting the resident set.
	reap := vclock.New()
	v2, _ := hv.Restore(snap, RestoreOptions{Prefetch: rec}, reap)
	if reap.Now() >= demand.Now() {
		t.Fatalf("REAP restore %v not faster than demand paging %v", reap.Now(), demand.Now())
	}
	wantReap := CostRestoreBase + time.Duration(rec.Pages)*CostRestorePerPageREAP
	if reap.Now() != wantReap {
		t.Fatalf("replay cost = %v, want %v", reap.Now(), wantReap)
	}

	// The record is a property of the image: a second capture from
	// another clone returns the first record, not a fresh one.
	if again := snap.RecordWorkingSet(v2); again != rec {
		t.Fatal("second capture replaced the image's record")
	}
	v1.Stop()
	v2.Stop()
}

func TestDirtyKindTargetsRegions(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	snap := takeTestSnapshot(t, hv, clock)
	v, _ := hv.Restore(snap, RestoreOptions{}, clock)
	defer v.Stop()

	v.DirtyKind(mem.KindRuntime, 4<<20)
	if got := v.Space().PrivatePages(mem.KindRuntime); got != mem.PagesFor(4<<20) {
		t.Fatalf("runtime private pages = %d", got)
	}
	if v.Space().PrivatePages(mem.KindKernel) != 0 {
		t.Fatal("kernel pages dirtied by runtime DirtyKind")
	}
	// Spilling beyond the region's size allocates private pages of the
	// same kind.
	v.DirtyKind(mem.KindHeap, 20<<20) // heap region is only 8 MiB
	heapPages := v.Space().PrivatePages(mem.KindHeap)
	if heapPages != mem.PagesFor(20<<20) {
		t.Fatalf("heap pages after spill = %d, want %d", heapPages, mem.PagesFor(20<<20))
	}
}

func TestDirtyDuringExecutionAccumulates(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	snap := takeTestSnapshot(t, hv, clock)
	// Two clones so that CoW-splitting actually moves pages from shared
	// to private (with one sharer, PSS is invariant under splits).
	v, _ := hv.Restore(snap, RestoreOptions{}, clock)
	other, _ := hv.Restore(snap, RestoreOptions{}, clock)
	defer v.Stop()
	defer other.Stop()
	v.DirtyDuringExecution(10 << 20)
	first := v.Space().USS()
	v.DirtyDuringExecution(10 << 20)
	second := v.Space().USS()
	grown := float64(second - first)
	want := float64(10 << 20)
	if grown < want*0.99 || grown > want*1.01 {
		t.Fatalf("second dirty grew USS by %.0f, want ~%.0f", grown, want)
	}
	// With exactly two sharers PSS is symmetric under splits (the clean
	// clone becomes sole owner of each split page's base frame), but
	// the smem invariant must hold: PSS sums to host usage minus
	// host-side (non-guest) overheads, and both must account the 20 MiB
	// of new private data.
	pssSum := v.Space().PSS() + other.Space().PSS()
	if pssSum < float64(snap.TotalBytes()+20<<20) {
		t.Fatalf("PSS sum %.0f below image+dirty", pssSum)
	}
}

func TestSnapshotInBadStateFails(t *testing.T) {
	hv := newHV()
	clock := vclock.New()
	v, _ := hv.CreateVM(DefaultConfig(), clock)
	// Not booted yet.
	_, err := hv.TakeSnapshot(v, SnapOSOnly,
		[]RegionSpec{{Kind: mem.KindKernel, Bytes: 1 << 20}}, 0, nil, clock)
	if !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v", err)
	}
}
