package vmm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/vclock"
)

// newRestoredFS is the root filesystem a restored clone sees: in real
// Firecracker each clone gets a copy-on-write block device over the
// snapshotted disk; here each clone starts from an independent image.
func newRestoredFS() *fs.MemFS { return fs.NewMemFS() }

// layoutSeed derives the address-space layout identity of a snapshot
// image (FNV-1a over the unique snapshot id, whitened by SplitMix64).
// The guest kernel rolled its ASLR dice exactly once — at the boot that
// produced this image — so the seed is a pure function of the image.
func layoutSeed(id string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// SnapshotKind distinguishes what the snapshot captured, for the
// paper's §5.5 factor analysis.
type SnapshotKind string

// Snapshot kinds.
const (
	// SnapOSOnly is taken right after the guest OS boots (the "VM-level
	// OS snapshot" factor): kernel pages are in the image, the language
	// runtime is not.
	SnapOSOnly SnapshotKind = "os-only"
	// SnapPostLoad is taken after the runtime booted and the function
	// loaded, but before any JIT compilation.
	SnapPostLoad SnapshotKind = "post-load"
	// SnapPostJIT is the Fireworks snapshot: runtime loaded, function
	// loaded, and all user code JIT-compiled.
	SnapPostJIT SnapshotKind = "post-jit"
)

// RegionSpec sizes one shared memory region of a snapshot image.
type RegionSpec struct {
	Kind  mem.Kind
	Bytes uint64
}

// Snapshot is a VM-level memory snapshot: a set of shareable page
// regions (mapped MAP_PRIVATE by every restored VM), the serialized
// device/network identity, and an opaque guest-state handle that the
// framework layer uses to reconstruct the language runtime at the
// resume point.
type Snapshot struct {
	ID       string
	Kind     SnapshotKind
	VMConfig Config
	// GuestIP is the snapshotted guest's network identity; every clone
	// wakes up with this same address (§3.5).
	GuestIP netsim.Addr
	// GuestState carries the runtime continuation (owned by the
	// framework layer; the hypervisor treats it as opaque bytes).
	GuestState any
	// ResidentWorkingSetBytes is how much of the image a restored VM
	// faults in before it can run (drives restore latency).
	ResidentWorkingSetBytes uint64
	// LayoutSeed identifies the address-space layout baked into the
	// image: every clone restored from this snapshot shares it (the
	// ASLR-entropy concern of §6). Re-generating the snapshot draws a
	// fresh seed, restoring layout diversity across snapshot
	// generations.
	LayoutSeed uint64

	mu      sync.Mutex
	regions []*mem.Region
	specs   []RegionSpec
	total   uint64
	host    *mem.Host
}

// TotalBytes returns the snapshot image size on disk.
func (s *Snapshot) TotalBytes() uint64 { return s.total }

// Specs returns the snapshot's region layout.
func (s *Snapshot) Specs() []RegionSpec { return append([]RegionSpec(nil), s.specs...) }

// Sharers returns how many live address spaces currently map the
// snapshot's first region (all regions share the same lifecycle).
func (s *Snapshot) Sharers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.regions) == 0 {
		return 0
	}
	return s.regions[0].Sharers()
}

// Lineage returns the page lineage of every region in the image — per
// region, how many pages are still shared by every restored VM, split
// by some, or fully reclaimed (see docs/memory.md). Regions appear in
// image layout order.
func (s *Snapshot) Lineage() []mem.RegionLineage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]mem.RegionLineage, 0, len(s.regions))
	for _, r := range s.regions {
		out = append(out, r.Lineage())
	}
	return out
}

// TakeSnapshot serializes a running VM's memory into a snapshot image.
// The caller describes the guest memory layout (regions by kind) and the
// resident working set; creation time is charged to clock. The source VM
// keeps running (Firecracker pauses and resumes it around serialization,
// which is inside the charged cost).
func (h *Hypervisor) TakeSnapshot(v *MicroVM, kind SnapshotKind, specs []RegionSpec, workingSet uint64, guestState any, clock *vclock.Clock) (*Snapshot, error) {
	if v.state != StateRunning && v.state != StatePaused {
		return nil, fmt.Errorf("%w: snapshot in %s", ErrBadState, v.state)
	}
	var total uint64
	for _, spec := range specs {
		total += spec.Bytes
	}
	if total == 0 {
		return nil, fmt.Errorf("vmm: snapshot of %s has no memory regions", v.ID)
	}
	if total > v.Config.MemBytes {
		return nil, fmt.Errorf("vmm: snapshot regions (%d bytes) exceed guest memory (%d bytes)", total, v.Config.MemBytes)
	}
	captureCost := CostSnapshotBase + time.Duration(total)*CostSnapshotPerByte
	clock.Advance(captureCost)
	h.snapshots.Inc()
	h.snapshotDur.ObserveDuration(captureCost)

	snap := &Snapshot{
		ID:                      "snap-" + v.ID,
		Kind:                    kind,
		VMConfig:                v.Config,
		GuestIP:                 "192.168.0.2", // the canonical guest address baked into every image
		GuestState:              guestState,
		ResidentWorkingSetBytes: workingSet,
		LayoutSeed:              layoutSeed("snap-" + v.ID),
		specs:                   append([]RegionSpec(nil), specs...),
		total:                   total,
		host:                    h.Host,
	}
	for _, spec := range specs {
		snap.regions = append(snap.regions, h.Host.NewRegion(string(spec.Kind)+"-"+snap.ID, spec.Kind, mem.PagesFor(spec.Bytes)))
	}
	return snap, nil
}

// RestoreOptions tunes the restore path.
type RestoreOptions struct {
	// REAPPrefetch loads the recorded working set with sequential reads
	// instead of demand paging (the REAP optimization the paper cites
	// as complementary).
	REAPPrefetch bool
}

// Restore creates a new microVM from a snapshot: a fresh VM shell whose
// address space maps every snapshot region copy-on-write. Restore cost
// (fixed + working-set page faults) is charged to clock. The caller is
// responsible for network setup and for reviving the guest state.
func (h *Hypervisor) Restore(snap *Snapshot, opts RestoreOptions, clock *vclock.Clock) (*MicroVM, error) {
	return h.RestoreTraced(snap, opts, clock, nil)
}

// RestoreTraced is Restore under an event scope: the restore emits a
// "vmm" event carrying the new VM's identity (and any injected fault
// emits its own at the restore site).
func (h *Hypervisor) RestoreTraced(snap *Snapshot, opts RestoreOptions, clock *vclock.Clock, sc *events.Scope) (*MicroVM, error) {
	if err := h.faults.InjectTraced(faults.SiteVMMRestore, clock, sc, 0); err != nil {
		return nil, fmt.Errorf("vmm: restore of %s: %w", snap.ID, err)
	}
	h.mu.Lock()
	h.nextID++
	id := fmt.Sprintf("fw-%04d", h.nextID)
	h.mu.Unlock()

	perPage := CostRestorePerPage
	if opts.REAPPrefetch {
		perPage = CostRestorePerPageREAP
	}
	pages := mem.PagesFor(snap.ResidentWorkingSetBytes)
	restoreCost := CostRestoreBase + time.Duration(pages)*perPage
	clock.Advance(restoreCost)
	h.restores.Inc()
	h.restoreDur.ObserveDuration(restoreCost)

	v := &MicroVM{
		ID:           id,
		Config:       snap.VMConfig,
		FS:           nil, // set below: restored VMs see the snapshotted rootfs
		hv:           h,
		state:        StateRunning,
		space:        h.Host.NewSpace(id),
		mmds:         make(map[string]string),
		booted:       true,
		fromSnapshot: snap,
	}
	// A restored VM has its own (CoW at the block level in real
	// Firecracker; independent here) view of the root filesystem.
	v.FS = newRestoredFS()
	v.space.AllocPrivate(mem.KindAnon, mem.PagesFor(CostVMMOverheadBytes))
	snap.mu.Lock()
	for _, r := range snap.regions {
		v.space.MapRegion(r)
		v.mapped = append(v.mapped, r)
	}
	snap.mu.Unlock()
	h.mu.Lock()
	h.vms[id] = v
	h.mu.Unlock()
	h.liveVMs.Add(1)
	sc.Instant("vmm", "restore", clock.Now(),
		events.A("vm", id), events.A("snapshot", snap.ID))
	return v, nil
}

// ReadMMDSWithCost reads guest metadata charging the MMDS access cost,
// the guest-side path used by resumed clones to learn their identity.
func (v *MicroVM) ReadMMDSWithCost(key string, clock *vclock.Clock) (string, bool) {
	clock.Advance(CostMMDSAccess)
	return v.MMDS(key)
}
