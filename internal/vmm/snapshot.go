package vmm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/vclock"
)

// newRestoredFS is the root filesystem a restored clone sees: in real
// Firecracker each clone gets a copy-on-write block device over the
// snapshotted disk; here each clone starts from an independent image.
func newRestoredFS() *fs.MemFS { return fs.NewMemFS() }

// layoutSeed derives the address-space layout identity of a snapshot
// image (FNV-1a over the unique snapshot id, whitened by SplitMix64).
// The guest kernel rolled its ASLR dice exactly once — at the boot that
// produced this image — so the seed is a pure function of the image.
func layoutSeed(id string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// SnapshotKind distinguishes what the snapshot captured, for the
// paper's §5.5 factor analysis.
type SnapshotKind string

// Snapshot kinds.
const (
	// SnapOSOnly is taken right after the guest OS boots (the "VM-level
	// OS snapshot" factor): kernel pages are in the image, the language
	// runtime is not.
	SnapOSOnly SnapshotKind = "os-only"
	// SnapPostLoad is taken after the runtime booted and the function
	// loaded, but before any JIT compilation.
	SnapPostLoad SnapshotKind = "post-load"
	// SnapPostJIT is the Fireworks snapshot: runtime loaded, function
	// loaded, and all user code JIT-compiled.
	SnapPostJIT SnapshotKind = "post-jit"
)

// RegionSpec sizes one shared memory region of a snapshot image.
type RegionSpec struct {
	Kind  mem.Kind
	Bytes uint64
	// Content identifies the bytes in this region for content-addressed
	// chunking: regions with the same Content class hash to the same
	// chunk IDs across snapshots, so a shared pool stores them once
	// (e.g. "base:kernel" for every guest kernel, "fn:<name>_<codehash>"
	// for one function's private heap). Empty means the region is
	// unique to this snapshot — no cross-image dedup.
	Content string
}

// Snapshot is a VM-level memory snapshot: a set of shareable page
// regions (mapped MAP_PRIVATE by every restored VM), the serialized
// device/network identity, and an opaque guest-state handle that the
// framework layer uses to reconstruct the language runtime at the
// resume point.
type Snapshot struct {
	ID       string
	Kind     SnapshotKind
	VMConfig Config
	// GuestIP is the snapshotted guest's network identity; every clone
	// wakes up with this same address (§3.5).
	GuestIP netsim.Addr
	// GuestState carries the runtime continuation (owned by the
	// framework layer; the hypervisor treats it as opaque bytes).
	GuestState any
	// ResidentWorkingSetBytes is how much of the image a restored VM
	// faults in before it can run (drives restore latency).
	ResidentWorkingSetBytes uint64
	// LayoutSeed identifies the address-space layout baked into the
	// image: every clone restored from this snapshot shares it (the
	// ASLR-entropy concern of §6). Re-generating the snapshot draws a
	// fresh seed, restoring layout diversity across snapshot
	// generations.
	LayoutSeed uint64
	// ContentKey identifies the image content for invalidation:
	// Fireworks keys function snapshots {function_id}_{code_hash}, so
	// redeploying changed code yields a new key and the stale image is
	// invalidated rather than silently reused.
	ContentKey string
	// BaseKey names the shared base-runtime (os-only/post-load) image
	// this snapshot is a delta over, if any. The store refuses to evict
	// a base image while deltas depending on it are resident.
	BaseKey string

	mu       sync.Mutex
	regions  []*mem.Region
	specs    []RegionSpec
	total    uint64
	host     *mem.Host
	manifest *chunk.Manifest
	ws       *WorkingSetRecord
}

// WorkingSetRecord is a REAP-style record of the chunks a restored VM
// actually touched (resident-set prefix plus the pages execution
// dirtied), captured on the first restore and replayed on later ones
// with sequential reads instead of demand page faults.
type WorkingSetRecord struct {
	// ChunkIDs are the hot chunks in image layout order.
	ChunkIDs []uint64
	// Pages is how many pages the record covers (drives replay cost).
	Pages int
	// Bytes is the byte extent of the recorded chunks.
	Bytes uint64
}

// TotalBytes returns the snapshot image size on disk.
func (s *Snapshot) TotalBytes() uint64 { return s.total }

// Specs returns the snapshot's region layout.
func (s *Snapshot) Specs() []RegionSpec { return append([]RegionSpec(nil), s.specs...) }

// Manifest returns the image's content-addressed chunk manifest.
func (s *Snapshot) Manifest() *chunk.Manifest { return s.manifest }

// WorkingSet returns the recorded REAP working set, or nil before the
// first restore has been observed.
func (s *Snapshot) WorkingSet() *WorkingSetRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ws
}

// RecordWorkingSet captures the working set a restored VM actually
// touched, from the host's fault telemetry: for each snapshot region,
// the chunks covering the eagerly-faulted resident prefix plus the
// chunks containing every page the VM CoW-split during execution. The
// record is kept on the snapshot (first writer wins — the record is a
// property of the image, not of one clone) and returned.
func (s *Snapshot) RecordWorkingSet(v *MicroVM) *WorkingSetRecord {
	rec := &WorkingSetRecord{}
	s.mu.Lock()
	regions := append([]*mem.Region(nil), s.regions...)
	s.mu.Unlock()
	remaining := s.ResidentWorkingSetBytes
	for i, r := range regions {
		chunks := s.manifest.RegionChunks(i)
		// The resident prefix is faulted front-to-back across the image
		// layout (kernel entry, runtime text, function heap), so each
		// region consumes the head of the remaining resident budget.
		prefix := uint64(r.Pages()) * mem.PageSize
		if prefix > remaining {
			prefix = remaining
		}
		remaining -= prefix
		hot := map[int]bool{}
		for ci := range chunks {
			if uint64(ci)*chunk.Size < prefix {
				hot[ci] = true
			}
		}
		for _, page := range v.space.DirtiedPagesIn(r) {
			if ci := int(uint64(page) * mem.PageSize / chunk.Size); ci < len(chunks) {
				hot[ci] = true
			}
		}
		for ci, c := range chunks {
			if !hot[ci] {
				continue
			}
			rec.ChunkIDs = append(rec.ChunkIDs, c.ID)
			rec.Bytes += c.Bytes
		}
	}
	rec.Pages = mem.PagesFor(rec.Bytes)
	s.mu.Lock()
	if s.ws == nil {
		s.ws = rec
	} else {
		rec = s.ws
	}
	s.mu.Unlock()
	return rec
}

// Sharers returns how many live address spaces currently map the
// snapshot's first region (all regions share the same lifecycle).
func (s *Snapshot) Sharers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.regions) == 0 {
		return 0
	}
	return s.regions[0].Sharers()
}

// Lineage returns the page lineage of every region in the image — per
// region, how many pages are still shared by every restored VM, split
// by some, or fully reclaimed (see docs/memory.md). Regions appear in
// image layout order.
func (s *Snapshot) Lineage() []mem.RegionLineage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]mem.RegionLineage, 0, len(s.regions))
	for _, r := range s.regions {
		out = append(out, r.Lineage())
	}
	return out
}

// TakeSnapshot serializes a running VM's memory into a snapshot image.
// The caller describes the guest memory layout (regions by kind) and the
// resident working set; creation time is charged to clock. The source VM
// keeps running (Firecracker pauses and resumes it around serialization,
// which is inside the charged cost).
func (h *Hypervisor) TakeSnapshot(v *MicroVM, kind SnapshotKind, specs []RegionSpec, workingSet uint64, guestState any, clock *vclock.Clock) (*Snapshot, error) {
	return h.TakeSnapshotTraced(v, kind, specs, workingSet, guestState, clock, nil)
}

// TakeSnapshotTraced is TakeSnapshot under an event scope: the capture
// cost histogram carries the scope's trace as its exemplar.
func (h *Hypervisor) TakeSnapshotTraced(v *MicroVM, kind SnapshotKind, specs []RegionSpec, workingSet uint64, guestState any, clock *vclock.Clock, sc *events.Scope) (*Snapshot, error) {
	if v.state != StateRunning && v.state != StatePaused {
		return nil, fmt.Errorf("%w: snapshot in %s", ErrBadState, v.state)
	}
	var total uint64
	for _, spec := range specs {
		total += spec.Bytes
	}
	if total == 0 {
		return nil, fmt.Errorf("vmm: snapshot of %s has no memory regions", v.ID)
	}
	if total > v.Config.MemBytes {
		return nil, fmt.Errorf("vmm: snapshot regions (%d bytes) exceed guest memory (%d bytes)", total, v.Config.MemBytes)
	}
	captureCost := CostSnapshotBase + time.Duration(total)*CostSnapshotPerByte
	clock.Advance(captureCost)
	h.snapshots.Inc()
	h.snapshotDur.ObserveDurationExemplar(captureCost, uint64(sc.TraceID()), clock.Now())

	snap := &Snapshot{
		ID:                      "snap-" + v.ID,
		Kind:                    kind,
		VMConfig:                v.Config,
		GuestIP:                 "192.168.0.2", // the canonical guest address baked into every image
		GuestState:              guestState,
		ResidentWorkingSetBytes: workingSet,
		LayoutSeed:              layoutSeed("snap-" + v.ID),
		specs:                   append([]RegionSpec(nil), specs...),
		total:                   total,
		host:                    h.Host,
	}
	contents := make([]chunk.Region, 0, len(specs))
	for _, spec := range specs {
		snap.regions = append(snap.regions, h.Host.NewRegion(string(spec.Kind)+"-"+snap.ID, spec.Kind, mem.PagesFor(spec.Bytes)))
		class := spec.Content
		if class == "" {
			// No declared content class: the region's bytes are unique
			// to this image, so hash under the snapshot's own identity.
			class = "img:" + snap.ID
		}
		contents = append(contents, chunk.Region{Class: class, Kind: string(spec.Kind), Bytes: spec.Bytes})
	}
	snap.manifest = chunk.Build(contents)
	return snap, nil
}

// RestoreOptions tunes the restore path.
type RestoreOptions struct {
	// Prefetch, when set, replays a recorded working set with
	// sequential reads instead of demand-faulting the whole resident
	// set (the REAP record-and-prefetch optimization the paper cites as
	// complementary). The record comes from Snapshot.RecordWorkingSet
	// on an earlier restore; a nil record demand-pages as before.
	Prefetch *WorkingSetRecord
}

// Restore creates a new microVM from a snapshot: a fresh VM shell whose
// address space maps every snapshot region copy-on-write. Restore cost
// (fixed + working-set page faults) is charged to clock. The caller is
// responsible for network setup and for reviving the guest state.
func (h *Hypervisor) Restore(snap *Snapshot, opts RestoreOptions, clock *vclock.Clock) (*MicroVM, error) {
	return h.RestoreTraced(snap, opts, clock, nil)
}

// RestoreTraced is Restore under an event scope: the restore emits a
// "vmm" event carrying the new VM's identity (and any injected fault
// emits its own at the restore site).
func (h *Hypervisor) RestoreTraced(snap *Snapshot, opts RestoreOptions, clock *vclock.Clock, sc *events.Scope) (*MicroVM, error) {
	if err := h.faults.InjectTraced(faults.SiteVMMRestore, clock, sc, 0); err != nil {
		return nil, fmt.Errorf("vmm: restore of %s: %w", snap.ID, err)
	}
	h.mu.Lock()
	h.nextID++
	id := fmt.Sprintf("fw-%04d", h.nextID)
	h.mu.Unlock()

	perPage := CostRestorePerPage
	pages := mem.PagesFor(snap.ResidentWorkingSetBytes)
	if rec := opts.Prefetch; rec != nil {
		// Replaying the record loads exactly the recorded chunks with
		// sequential reads — cheaper per page than random demand
		// faults, and no page outside the record is touched eagerly.
		perPage = CostRestorePerPageREAP
		pages = rec.Pages
	}
	restoreCost := CostRestoreBase + time.Duration(pages)*perPage
	clock.Advance(restoreCost)
	h.restores.Inc()
	h.restoreDur.ObserveDurationExemplar(restoreCost, uint64(sc.TraceID()), clock.Now())

	v := &MicroVM{
		ID:           id,
		Config:       snap.VMConfig,
		FS:           nil, // set below: restored VMs see the snapshotted rootfs
		hv:           h,
		state:        StateRunning,
		space:        h.Host.NewSpace(id),
		mmds:         make(map[string]string),
		booted:       true,
		fromSnapshot: snap,
	}
	// A restored VM has its own (CoW at the block level in real
	// Firecracker; independent here) view of the root filesystem.
	v.FS = newRestoredFS()
	v.space.AllocPrivate(mem.KindAnon, mem.PagesFor(CostVMMOverheadBytes))
	snap.mu.Lock()
	for _, r := range snap.regions {
		v.space.MapRegion(r)
		v.mapped = append(v.mapped, r)
	}
	snap.mu.Unlock()
	h.mu.Lock()
	h.vms[id] = v
	h.mu.Unlock()
	h.liveVMs.Add(1)
	sc.Instant("vmm", "restore", clock.Now(),
		events.A("vm", id), events.A("snapshot", snap.ID))
	return v, nil
}

// ReadMMDSWithCost reads guest metadata charging the MMDS access cost,
// the guest-side path used by resumed clones to learn their identity.
func (v *MicroVM) ReadMMDSWithCost(key string, clock *vclock.Clock) (string, bool) {
	clock.Advance(CostMMDSAccess)
	return v.MMDS(key)
}
