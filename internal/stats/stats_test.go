package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{2, 8}); !approx(got, 4, 1e-9) {
		t.Fatalf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{7}); !approx(got, 7, 1e-9) {
		t.Fatalf("GeoMean(7) = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive input")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMeanDurations(t *testing.T) {
	got := GeoMeanDurations([]time.Duration{2 * time.Millisecond, 8 * time.Millisecond})
	if got < 3900*time.Microsecond || got > 4100*time.Microsecond {
		t.Fatalf("GeoMeanDurations = %v, want ~4ms", got)
	}
	if GeoMeanDurations(nil) != 0 {
		t.Fatal("empty != 0")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single value stddev != 0")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !approx(got, 2, 1e-9) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); !approx(got, tc.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if Percentile([]float64{3}, 99) != 3 {
		t.Fatal("single-element percentile")
	}
	// Out-of-range p values clamp.
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 10 {
		t.Fatal("percentile clamping failed")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []int16, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		v := Percentile(xs, float64(p%101))
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100*time.Millisecond, 10*time.Millisecond); got != 10 {
		t.Fatalf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(time.Second, 0), 1) {
		t.Fatal("Speedup with fast=0 not +Inf")
	}
	if Speedup(0, 0) != 1 {
		t.Fatal("Speedup(0,0) != 1")
	}
}

func TestFormatSpeedup(t *testing.T) {
	if got := FormatSpeedup(20.63); got != "20.6x" {
		t.Fatalf("FormatSpeedup = %q", got)
	}
	if got := FormatSpeedup(math.Inf(1)); got != "infx" {
		t.Fatalf("FormatSpeedup(inf) = %q", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, tc := range cases {
		if got := FormatBytes(tc.n); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestPercentileNaNClampsToMin(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, math.NaN()); got != 1 {
		t.Errorf("Percentile(xs, NaN) = %v, want 1 (the min, like p<0)", got)
	}
}
