// Package stats provides the small set of statistics helpers used by the
// Fireworks experiment harness: mean, geometric mean, percentiles, and
// speedup formatting. All functions are pure and allocation-light.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive inputs are invalid for a geometric mean and panic, since a
// silent fallback would corrupt the figure-level summaries that depend on
// this function.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sumLog float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs)))
}

// GeoMeanDurations returns the geometric mean of a set of durations.
func GeoMeanDurations(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(GeoMean(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// NaN fails both range checks below and would flow into the array
	// index; clamp it with the other out-of-range inputs.
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Speedup returns how many times faster "fast" is than "slow"
// (slow / fast). It returns +Inf when fast is zero and slow is not, and 1
// when both are zero.
func Speedup(slow, fast time.Duration) float64 {
	if fast == 0 {
		if slow == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(slow) / float64(fast)
}

// FormatSpeedup renders a speedup factor the way the paper reports them,
// e.g. "20.6x" or "1.4x".
func FormatSpeedup(f float64) string {
	if math.IsInf(f, 1) {
		return "infx"
	}
	return fmt.Sprintf("%.1fx", f)
}

// FormatBytes renders a byte count with a binary-unit suffix (KiB, MiB,
// GiB) the way memory-experiment tables report them.
func FormatBytes(n uint64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib:
		return fmt.Sprintf("%.2f GiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.2f MiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.2f KiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
