package mem

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// SpaceReport is one row of the smem-style per-space table: how one
// microVM's (or container's) memory looks to the host. All sizes are
// bytes; definitions match smem exactly (see docs/memory.md).
type SpaceReport struct {
	Name string `json:"name"`
	// RSS counts every resident page the space maps (shared or not).
	RSSBytes uint64 `json:"rss_bytes"`
	// PSS counts private pages fully and each shared frame 1/N.
	PSSBytes float64 `json:"pss_bytes"`
	// USS counts only pages that would be freed if the space exited.
	USSBytes uint64 `json:"uss_bytes"`
	// Shared is the resident shared-frame portion of RSS; Private is
	// the rest (anonymous allocations plus CoW copies).
	SharedBytes  uint64 `json:"shared_bytes"`
	PrivateBytes uint64 `json:"private_bytes"`
	// ByKind decomposes PSS by page content (the Figure 12 factors).
	ByKind map[Kind]float64 `json:"by_kind"`
}

// RegionLineage is the page lineage of one shared region: for every
// page of a snapshot image, is its base frame still shared by all
// mappers, split by some (CoW copies exist but the base frame is still
// resident), or reclaimed because every sharer split it.
type RegionLineage struct {
	Region  string `json:"region"`
	Kind    Kind   `json:"kind"`
	Pages   int    `json:"pages"`
	Sharers int    `json:"sharers"`
	// SharedPages no sharer has split; PartialPages some (not all)
	// sharers split; ReclaimedPages every sharer split, so the base
	// frame was returned to the page cache.
	SharedPages    int `json:"shared_pages"`
	PartialPages   int `json:"partial_pages"`
	ReclaimedPages int `json:"reclaimed_pages"`
	// SplitCopies is the total number of private CoW copies live across
	// all sharers; Faults the region's lifetime CoW fault count.
	SplitCopies int    `json:"split_copies"`
	Faults      uint64 `json:"faults"`
	// BaseResidentPages = SharedPages + PartialPages (frames the image
	// still holds in memory); SharedFraction is that over Pages.
	BaseResidentPages int     `json:"base_resident_pages"`
	SharedFraction    float64 `json:"shared_fraction"`
}

// Lineage returns the region's current page lineage.
func (r *Region) Lineage() RegionLineage {
	r.host.mu.Lock()
	defer r.host.mu.Unlock()
	return r.lineageLocked()
}

func (r *Region) lineageLocked() RegionLineage {
	l := RegionLineage{
		Region:  r.name,
		Kind:    r.kind,
		Pages:   r.pages,
		Sharers: r.sharers,
		Faults:  r.faults,
	}
	if r.sharers == 0 {
		// Dormant: no frames resident, nothing shared.
		return l
	}
	for p, n := range r.dirtied {
		l.SplitCopies += n
		if r.freedBase[p] {
			l.ReclaimedPages++
		} else {
			l.PartialPages++
		}
	}
	l.SharedPages = r.pages - l.PartialPages - l.ReclaimedPages
	l.BaseResidentPages = l.SharedPages + l.PartialPages
	if r.pages > 0 {
		l.SharedFraction = float64(l.BaseResidentPages) / float64(r.pages)
	}
	return l
}

// HostReport is a point-in-time fleet memory report: the smem-style
// per-space table, per-region page lineage, and the host-level
// invariants the telemetry layer asserts (PSS conservation, sharing
// efficiency, swap-pressure watermarks).
type HostReport struct {
	Spaces  []SpaceReport   `json:"spaces"`
	Regions []RegionLineage `json:"regions"`

	CapacityBytes      uint64 `json:"capacity_bytes"`
	UsedBytes          uint64 `json:"used_bytes"`
	PrivateBytes       uint64 `json:"private_bytes"`
	SharedBytes        uint64 `json:"shared_bytes"`
	SwapThresholdBytes uint64 `json:"swap_threshold_bytes"`
	SwappedBytes       uint64 `json:"swapped_bytes"`
	HighWaterBytes     uint64 `json:"high_water_bytes"`
	Swapping           bool   `json:"swapping"`

	// PSSSumBytes is the sum of every space's PSS. PSS conservation
	// says it equals UsedBytes page-exactly: private pages count once,
	// and a resident shared frame's 1/N shares sum to one across its N
	// referents. PSSPageExact asserts that, absorbing float error.
	PSSSumBytes  float64 `json:"pss_sum_bytes"`
	PSSPageExact bool    `json:"pss_page_exact"`
	RSSSumBytes  uint64  `json:"rss_sum_bytes"`
	// SharingEfficiency = RSSSum / Used: how many bytes of apparent
	// per-VM memory each resident byte serves (1.0 = no sharing; the
	// fleet-wide win of the paper's shared post-JIT snapshot).
	SharingEfficiency float64 `json:"sharing_efficiency"`
}

// Report computes the fleet memory report. The whole report is derived
// under one lock acquisition, so its invariants hold even while spaces
// are concurrently created, dirtied, and freed. Dormant regions that
// never faulted are omitted.
func (h *Host) Report() HostReport {
	h.mu.Lock()
	defer h.mu.Unlock()

	rep := HostReport{
		CapacityBytes:      h.capacity,
		UsedBytes:          h.usedPages * PageSize,
		PrivateBytes:       h.privatePages * PageSize,
		SharedBytes:        (h.usedPages - h.privatePages) * PageSize,
		SwapThresholdBytes: uint64(float64(h.capacity) * h.swappiness),
		SwappedBytes:       h.swappedPagesLocked() * PageSize,
		HighWaterBytes:     h.maxUsedPages * PageSize,
	}
	rep.Swapping = rep.UsedBytes > rep.SwapThresholdBytes

	spaces := make([]*Space, 0, len(h.spaces))
	for _, s := range h.spaces {
		spaces = append(spaces, s)
	}
	sort.Slice(spaces, func(i, j int) bool { return spaces[i].seq < spaces[j].seq })
	for _, s := range spaces {
		var privPages uint64
		for _, n := range s.private {
			privPages += uint64(n)
		}
		sr := SpaceReport{
			Name:         s.name,
			RSSBytes:     s.rssLocked(),
			PSSBytes:     s.pssLocked(),
			USSBytes:     s.ussLocked(),
			PrivateBytes: privPages * PageSize,
			ByKind:       s.breakdownLocked(),
		}
		sr.SharedBytes = sr.RSSBytes - sr.PrivateBytes
		rep.PSSSumBytes += sr.PSSBytes
		rep.RSSSumBytes += sr.RSSBytes
		rep.Spaces = append(rep.Spaces, sr)
	}

	regions := make([]*Region, 0, len(h.regions))
	for _, r := range h.regions {
		if r.sharers > 0 || r.faults > 0 {
			regions = append(regions, r)
		}
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].seq < regions[j].seq })
	for _, r := range regions {
		rep.Regions = append(rep.Regions, r.lineageLocked())
	}

	rep.PSSPageExact = uint64(math.Round(rep.PSSSumBytes/PageSize)) == h.usedPages
	if rep.UsedBytes > 0 {
		rep.SharingEfficiency = float64(rep.RSSSumBytes) / float64(rep.UsedBytes)
	}
	return rep
}

// WriteText renders the report as the smem-style table plus the
// lineage table (the format GET /memory and fwcli -watch print).
func (rep HostReport) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "# host: used %s / %s (swap at %s, high water %s",
		humanBytes(float64(rep.UsedBytes)), humanBytes(float64(rep.CapacityBytes)),
		humanBytes(float64(rep.SwapThresholdBytes)), humanBytes(float64(rep.HighWaterBytes)))
	if rep.Swapping {
		fmt.Fprintf(w, ", SWAPPING %s", humanBytes(float64(rep.SwappedBytes)))
	}
	fmt.Fprintln(w, ")")
	exact := "page-exact"
	if !rep.PSSPageExact {
		exact = "NOT page-exact"
	}
	fmt.Fprintf(w, "# sharing efficiency %.2fx (rss sum %s over %s resident); pss sum %s, %s\n",
		rep.SharingEfficiency, humanBytes(float64(rep.RSSSumBytes)),
		humanBytes(float64(rep.UsedBytes)), humanBytes(rep.PSSSumBytes), exact)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "SPACE\tRSS\tPSS\tUSS\tSHARED\tPRIVATE")
	for _, s := range rep.Spaces {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", s.Name,
			humanBytes(float64(s.RSSBytes)), humanBytes(s.PSSBytes),
			humanBytes(float64(s.USSBytes)), humanBytes(float64(s.SharedBytes)),
			humanBytes(float64(s.PrivateBytes)))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(rep.Regions) == 0 {
		return nil
	}
	fmt.Fprintln(w, "# snapshot page lineage")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "REGION\tKIND\tPAGES\tSHARERS\tSHARED\tPARTIAL\tRECLAIMED\tCOPIES\tFAULTS\tRESIDENT")
	for _, l := range rep.Regions {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f%%\n",
			l.Region, l.Kind, l.Pages, l.Sharers, l.SharedPages, l.PartialPages,
			l.ReclaimedPages, l.SplitCopies, l.Faults, l.SharedFraction*100)
	}
	return tw.Flush()
}

// humanBytes renders a byte quantity with a binary suffix, one decimal.
func humanBytes(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1<<30:
		return fmt.Sprintf("%.1fG", v/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.1fM", v/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.1fK", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
