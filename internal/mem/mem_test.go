package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestHost() *Host { return NewHost(1<<30, 0.6) }

func TestHostBasics(t *testing.T) {
	h := NewHost(128<<30, 0.6)
	if h.Capacity() != 128<<30 {
		t.Fatal("capacity")
	}
	capacity := float64(uint64(128 << 30))
	if h.SwapThreshold() != uint64(capacity*0.6) {
		t.Fatalf("threshold = %d", h.SwapThreshold())
	}
	if h.Used() != 0 || h.Swapping() {
		t.Fatal("fresh host not empty")
	}
}

func TestBadSwappinessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHost(1<<30, 1.5)
}

func TestPrivateAllocationAccounting(t *testing.T) {
	h := newTestHost()
	s := h.NewSpace("a")
	s.AllocPrivate(KindHeap, 100)
	if h.Used() != 100*PageSize {
		t.Fatalf("Used = %d", h.Used())
	}
	if s.RSS() != 100*PageSize {
		t.Fatalf("RSS = %d", s.RSS())
	}
	if s.PSS() != 100*PageSize {
		t.Fatalf("PSS = %v", s.PSS())
	}
	s.FreePrivate(KindHeap, 40)
	if h.Used() != 60*PageSize {
		t.Fatalf("Used after free = %d", h.Used())
	}
	s.Free()
	if h.Used() != 0 {
		t.Fatalf("Used after space free = %d", h.Used())
	}
}

func TestOverFreePanics(t *testing.T) {
	h := newTestHost()
	s := h.NewSpace("a")
	s.AllocPrivate(KindHeap, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-free")
		}
	}()
	s.FreePrivate(KindHeap, 6)
}

func TestRegionSharing(t *testing.T) {
	h := newTestHost()
	r := h.NewRegion("snap", KindKernel, 1000)
	if h.Used() != 0 {
		t.Fatal("unmapped region consumes memory")
	}
	a := h.NewSpace("a")
	a.MapRegion(r)
	if h.Used() != 1000*PageSize {
		t.Fatalf("Used = %d after first map", h.Used())
	}
	b := h.NewSpace("b")
	b.MapRegion(r)
	// Second mapping shares frames: no growth.
	if h.Used() != 1000*PageSize {
		t.Fatalf("Used = %d after second map", h.Used())
	}
	if r.Sharers() != 2 {
		t.Fatalf("sharers = %d", r.Sharers())
	}
	// PSS splits evenly.
	if a.PSS() != 500*PageSize || b.PSS() != 500*PageSize {
		t.Fatalf("PSS = %v / %v", a.PSS(), b.PSS())
	}
	// RSS counts the full mapping.
	if a.RSS() != 1000*PageSize {
		t.Fatalf("RSS = %d", a.RSS())
	}
	// USS: no page is unique to either.
	if a.USS() != 0 {
		t.Fatalf("USS = %d", a.USS())
	}
	b.Free()
	if a.USS() != 1000*PageSize {
		t.Fatalf("USS after b freed = %d", a.USS())
	}
	a.Free()
	if h.Used() != 0 {
		t.Fatalf("Used after all freed = %d", h.Used())
	}
}

func TestDoubleMapPanics(t *testing.T) {
	h := newTestHost()
	r := h.NewRegion("snap", KindKernel, 10)
	s := h.NewSpace("a")
	s.MapRegion(r)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double map")
		}
	}()
	s.MapRegion(r)
}

func TestCoWSplit(t *testing.T) {
	h := newTestHost()
	r := h.NewRegion("snap", KindHeap, 100)
	a := h.NewSpace("a")
	b := h.NewSpace("b")
	a.MapRegion(r)
	b.MapRegion(r)

	if !a.DirtyPage(r, 0) {
		t.Fatal("first write did not fault")
	}
	if a.DirtyPage(r, 0) {
		t.Fatal("second write faulted again")
	}
	// One private copy materialized.
	if h.Used() != 101*PageSize {
		t.Fatalf("Used = %d", h.Used())
	}
	// a: 1 private + 99 shared/2. b: 99 shared/2 + 1 page solely b's.
	wantA := float64(PageSize) + 99*float64(PageSize)/2
	if math.Abs(a.PSS()-wantA) > 1 {
		t.Fatalf("a.PSS = %v, want %v", a.PSS(), wantA)
	}
	wantB := 99*float64(PageSize)/2 + float64(PageSize) // page 0 base now solely b's
	if math.Abs(b.PSS()-wantB) > 1 {
		t.Fatalf("b.PSS = %v, want %v", b.PSS(), wantB)
	}
	// b's USS: page 0's base frame is now referenced only by b.
	if b.USS() != PageSize {
		t.Fatalf("b.USS = %d", b.USS())
	}
	if a.USS() != PageSize {
		t.Fatalf("a.USS = %d (its private copy)", a.USS())
	}
}

func TestDirtyPagesCount(t *testing.T) {
	h := newTestHost()
	r := h.NewRegion("snap", KindHeap, 50)
	a := h.NewSpace("a")
	a.MapRegion(r)
	if n := a.DirtyPages(r, 30); n != 30 {
		t.Fatalf("faults = %d", n)
	}
	if n := a.DirtyPages(r, 40); n != 10 {
		t.Fatalf("incremental faults = %d", n)
	}
	if n := a.DirtyPages(r, 500); n != 10 {
		t.Fatalf("over-size dirty = %d new faults", n)
	}
	if a.PrivatePages(KindHeap) != 50 {
		t.Fatalf("private heap pages = %d", a.PrivatePages(KindHeap))
	}
}

func TestDirtyUnmappedPanics(t *testing.T) {
	h := newTestHost()
	r := h.NewRegion("snap", KindHeap, 10)
	s := h.NewSpace("a")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.DirtyPage(r, 0)
}

func TestUseAfterFreePanics(t *testing.T) {
	h := newTestHost()
	s := h.NewSpace("a")
	s.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on use-after-free")
		}
	}()
	s.AllocPrivate(KindHeap, 1)
}

func TestBreakdownByKind(t *testing.T) {
	h := newTestHost()
	r := h.NewRegion("kern", KindKernel, 100)
	s := h.NewSpace("a")
	s.MapRegion(r)
	s.AllocPrivate(KindHeap, 10)
	bd := s.BreakdownByKind()
	if bd[KindKernel] != 100*PageSize {
		t.Fatalf("kernel share = %v", bd[KindKernel])
	}
	if bd[KindHeap] != 10*PageSize {
		t.Fatalf("heap = %v", bd[KindHeap])
	}
	// Sum of breakdown equals PSS.
	var sum float64
	for _, v := range bd {
		sum += v
	}
	if math.Abs(sum-s.PSS()) > 1 {
		t.Fatalf("breakdown sum %v != PSS %v", sum, s.PSS())
	}
}

// TestPSSConservation checks the fundamental smem invariant on random
// sharing/dirtying patterns: the PSS over all spaces sums to exactly the
// host's used physical memory.
func TestPSSConservation(t *testing.T) {
	type op struct {
		Space uint8
		Page  uint16
	}
	f := func(regionPages uint16, nSpaces uint8, dirties []op, privates []uint8) bool {
		pages := int(regionPages%512) + 1
		n := int(nSpaces%6) + 1
		h := NewHost(64<<30, 0.6)
		r := h.NewRegion("snap", KindHeap, pages)
		spaces := make([]*Space, n)
		for i := range spaces {
			spaces[i] = h.NewSpace("s")
			spaces[i].MapRegion(r)
		}
		for i, d := range dirties {
			if i > 200 {
				break
			}
			spaces[int(d.Space)%n].DirtyPage(r, int(d.Page)%pages)
		}
		for i, p := range privates {
			if i >= n {
				break
			}
			spaces[i].AllocPrivate(KindAnon, int(p))
		}
		var pssSum float64
		for _, s := range spaces {
			pssSum += s.PSS()
		}
		return math.Abs(pssSum-float64(h.Used())) < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestUsedNeverNegativeOnTeardown frees spaces in random order and
// checks host accounting returns exactly to zero.
func TestUsedNeverNegativeOnTeardown(t *testing.T) {
	f := func(order []uint8, dirtySeed uint16) bool {
		h := NewHost(64<<30, 0.6)
		r := h.NewRegion("snap", KindHeap, 64)
		const n = 4
		spaces := make([]*Space, n)
		for i := range spaces {
			spaces[i] = h.NewSpace("s")
			spaces[i].MapRegion(r)
			spaces[i].DirtyPages(r, int(dirtySeed)%65)
			spaces[i].AllocPrivate(KindAnon, i*3)
		}
		freed := make(map[int]bool)
		for _, o := range order {
			i := int(o) % n
			if !freed[i] {
				spaces[i].Free()
				freed[i] = true
			}
		}
		for i := 0; i < n; i++ {
			if !freed[i] {
				spaces[i].Free()
			}
		}
		return h.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct {
		bytes uint64
		want  int
	}{
		{0, 0}, {1, 1}, {PageSize, 1}, {PageSize + 1, 2}, {10 * PageSize, 10},
	}
	for _, tc := range cases {
		if got := PagesFor(tc.bytes); got != tc.want {
			t.Errorf("PagesFor(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestSwapThresholdCrossing(t *testing.T) {
	h := NewHost(100*PageSize, 0.6)
	s := h.NewSpace("a")
	s.AllocPrivate(KindHeap, 60)
	if h.Swapping() {
		t.Fatal("swapping at exactly the threshold")
	}
	s.AllocPrivate(KindHeap, 1)
	if !h.Swapping() {
		t.Fatal("not swapping past the threshold")
	}
}

func TestKindsSorted(t *testing.T) {
	ks := Kinds()
	if len(ks) != 6 {
		t.Fatalf("kinds = %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("kinds not sorted: %v", ks)
		}
	}
}
