package mem

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// reportFixture builds a host with one shared snapshot region mapped by
// three spaces, CoW splits in various states, and a private allocation.
func reportFixture() (*Host, *Region, []*Space) {
	h := NewHost(1<<30, 0.6)
	r := h.NewRegion("snap", KindRuntime, 100)
	var spaces []*Space
	for i := 0; i < 3; i++ {
		s := h.NewSpace([]string{"a", "b", "c"}[i])
		s.MapRegion(r)
		spaces = append(spaces, s)
	}
	spaces[0].DirtyPages(r, 10) // pages 0-9 partial (a split)
	spaces[1].DirtyPages(r, 5)  // pages 0-4 split by a and b
	spaces[2].DirtyPages(r, 2)  // pages 0-1 split by everyone → reclaimed
	spaces[0].AllocPrivate(KindHeap, 7)
	return h, r, spaces
}

func TestHostReportPSSConservation(t *testing.T) {
	h, _, _ := reportFixture()
	rep := h.Report()
	if !rep.PSSPageExact {
		t.Fatalf("PSS sum %v not page-exact vs used %d", rep.PSSSumBytes, rep.UsedBytes)
	}
	if got := uint64(math.Round(rep.PSSSumBytes)); got != rep.UsedBytes {
		t.Fatalf("PSS sum %d != used %d", got, rep.UsedBytes)
	}
	if rep.RSSSumBytes <= rep.UsedBytes {
		t.Fatalf("sharing should make RSS sum (%d) exceed used (%d)", rep.RSSSumBytes, rep.UsedBytes)
	}
	if rep.SharingEfficiency <= 1 {
		t.Fatalf("sharing efficiency = %v, want > 1", rep.SharingEfficiency)
	}
	if len(rep.Spaces) != 3 {
		t.Fatalf("spaces = %d, want 3", len(rep.Spaces))
	}
	// Creation order is deterministic.
	if rep.Spaces[0].Name != "a" || rep.Spaces[2].Name != "c" {
		t.Fatalf("space order = %v", []string{rep.Spaces[0].Name, rep.Spaces[1].Name, rep.Spaces[2].Name})
	}
}

func TestRegionLineage(t *testing.T) {
	h, r, _ := reportFixture()
	l := r.Lineage()
	// Pages 0-1: all three split → reclaimed. Pages 2-4: a+b split →
	// partial. Pages 5-9: only a split → partial. Pages 10-99: clean.
	if l.ReclaimedPages != 2 || l.PartialPages != 8 || l.SharedPages != 90 {
		t.Fatalf("lineage = %+v", l)
	}
	if l.SplitCopies != 10+5+2 {
		t.Fatalf("split copies = %d, want 17", l.SplitCopies)
	}
	if l.Faults != 17 {
		t.Fatalf("faults = %d, want 17", l.Faults)
	}
	if l.BaseResidentPages != 98 {
		t.Fatalf("base resident = %d, want 98", l.BaseResidentPages)
	}
	if math.Abs(l.SharedFraction-0.98) > 1e-9 {
		t.Fatalf("shared fraction = %v", l.SharedFraction)
	}
	if l.Sharers != 3 {
		t.Fatalf("sharers = %d", l.Sharers)
	}
	rep := h.Report()
	if len(rep.Regions) != 1 || rep.Regions[0] != l {
		t.Fatalf("report lineage mismatch: %+v vs %+v", rep.Regions, l)
	}
}

func TestReportUnregistersFreedSpaces(t *testing.T) {
	h, _, spaces := reportFixture()
	spaces[1].Free()
	rep := h.Report()
	if len(rep.Spaces) != 2 {
		t.Fatalf("spaces after free = %d, want 2", len(rep.Spaces))
	}
	if !rep.PSSPageExact {
		t.Fatalf("PSS sum %v not page-exact after free (used %d)", rep.PSSSumBytes, rep.UsedBytes)
	}
	for _, s := range rep.Spaces {
		if s.Name == "b" {
			t.Fatal("freed space still reported")
		}
	}
	// Dormant regions with no faults vanish from the report; this one
	// faulted, so it stays even after everyone unmaps.
	spaces[0].Free()
	spaces[2].Free()
	rep = h.Report()
	if len(rep.Regions) != 1 || rep.Regions[0].Sharers != 0 || rep.Regions[0].BaseResidentPages != 0 {
		t.Fatalf("dormant faulted region = %+v", rep.Regions)
	}
	if rep.UsedBytes != 0 {
		t.Fatalf("used after full teardown = %d", rep.UsedBytes)
	}
	if rep.HighWaterBytes == 0 {
		t.Fatal("high water lost after teardown")
	}
}

func TestReportWriteText(t *testing.T) {
	h, _, _ := reportFixture()
	var sb strings.Builder
	if err := h.Report().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SPACE", "RSS", "PSS", "snapshot page lineage", "snap#1", "sharing efficiency", "page-exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}

// TestBreakdownByKindWithSplits covers the CoW arithmetic of the
// per-kind PSS decomposition: clean shared pages split 1/N, partially
// split pages split across remaining referents, own copies private.
func TestBreakdownByKindWithSplits(t *testing.T) {
	h := NewHost(1<<30, 0.6)
	r := h.NewRegion("rt", KindRuntime, 10)
	a := h.NewSpace("a")
	b := h.NewSpace("b")
	a.MapRegion(r)
	b.MapRegion(r)
	a.DirtyPage(r, 0) // a holds a private copy; b alone references base
	a.AllocPrivate(KindHeap, 3)

	ba := a.BreakdownByKind()
	// a: 9 clean pages at 1/2 + 1 private copy + 3 heap pages.
	if got, want := ba[KindRuntime], 9*float64(PageSize)/2+PageSize; got != want {
		t.Fatalf("a runtime = %v, want %v", got, want)
	}
	if got := ba[KindHeap]; got != 3*PageSize {
		t.Fatalf("a heap = %v", got)
	}
	bb := b.BreakdownByKind()
	// b: 9 clean pages at 1/2 + sole referent of page 0's base frame.
	if got, want := bb[KindRuntime], 9*float64(PageSize)/2+PageSize; got != want {
		t.Fatalf("b runtime = %v, want %v", got, want)
	}
	// The two breakdowns plus nothing else must sum to host usage.
	var total float64
	for _, v := range ba {
		total += v
	}
	for _, v := range bb {
		total += v
	}
	if got := uint64(math.Round(total)); got != h.Used() {
		t.Fatalf("breakdown sum %d != used %d", got, h.Used())
	}
}

// TestUnmapWithOpenCoWSplits frees a space that still holds CoW copies:
// its copies must be released and the base frames it left re-balanced.
func TestUnmapWithOpenCoWSplits(t *testing.T) {
	h := NewHost(1<<30, 0.6)
	r := h.NewRegion("rt", KindRuntime, 8)
	a := h.NewSpace("a")
	b := h.NewSpace("b")
	a.MapRegion(r)
	b.MapRegion(r)
	// Both split page 0 → base frame reclaimed (8 base - 1 + 2 copies).
	a.DirtyPage(r, 0)
	b.DirtyPage(r, 0)
	if got, want := h.Used(), uint64(9*PageSize); got != want {
		t.Fatalf("used = %d, want %d", got, want)
	}
	// a leaves with its split open: its copy goes away, and because b
	// also split page 0, the base frame stays reclaimed with b as the
	// sole sharer.
	a.Free()
	if got, want := h.Used(), uint64(8*PageSize); got != want {
		t.Fatalf("used after a.Free = %d, want %d", got, want)
	}
	if got := b.USS(); got != 8*PageSize {
		t.Fatalf("b USS = %d, want sole ownership of everything", got)
	}
	b.Free()
	if h.Used() != 0 {
		t.Fatalf("used after full teardown = %d", h.Used())
	}
}

// TestLastSharerPromotion: when the second-to-last sharer leaves, the
// survivor becomes sole referent — its USS absorbs the whole region and
// reclaimed base frames of pages only the leaver had split come back.
func TestLastSharerPromotion(t *testing.T) {
	h := NewHost(1<<30, 0.6)
	r := h.NewRegion("rt", KindRuntime, 8)
	a := h.NewSpace("a")
	b := h.NewSpace("b")
	a.MapRegion(r)
	b.MapRegion(r)
	b.DirtyPage(r, 3) // b's copy exists; a alone references base of 3
	if got := a.USS(); got != PageSize {
		t.Fatalf("a USS with co-sharer = %d, want %d (sole referent of page 3)", got, PageSize)
	}
	b.Free()
	// a is promoted: every base frame is uniquely a's now.
	if got, want := a.USS(), uint64(8*PageSize); got != want {
		t.Fatalf("a USS after promotion = %d, want %d", got, want)
	}
	if got, want := a.PSS(), float64(8*PageSize); got != want {
		t.Fatalf("a PSS after promotion = %v, want %v", got, want)
	}
	if got, want := h.Used(), uint64(8*PageSize); got != want {
		t.Fatalf("used = %d, want %d", got, want)
	}
	l := r.Lineage()
	if l.Sharers != 1 || l.SharedPages != 8 || l.PartialPages != 0 || l.ReclaimedPages != 0 {
		t.Fatalf("lineage after promotion = %+v", l)
	}
}

// TestLastSharerPromotionRematerialize: a page every sharer had split
// (base reclaimed) must re-materialize when a fresh space maps the
// region again.
func TestLastSharerPromotionRematerialize(t *testing.T) {
	h := NewHost(1<<30, 0.6)
	r := h.NewRegion("rt", KindRuntime, 4)
	a := h.NewSpace("a")
	a.MapRegion(r)
	a.DirtyPage(r, 0) // sole sharer splits → base reclaimed
	if got, want := h.Used(), uint64(4*PageSize); got != want {
		t.Fatalf("used = %d, want %d", got, want)
	}
	b := h.NewSpace("b")
	b.MapRegion(r) // base of page 0 re-materializes for b
	if got, want := h.Used(), uint64(5*PageSize); got != want {
		t.Fatalf("used after remap = %d, want %d", got, want)
	}
	if got := r.Lineage().ReclaimedPages; got != 0 {
		t.Fatalf("reclaimed after remap = %d", got)
	}
	a.Free()
	b.Free()
	if h.Used() != 0 {
		t.Fatalf("used after teardown = %d", h.Used())
	}
}

func TestInstrumentedGaugesAndPSSHistogram(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHost(1<<30, 0.6)
	h.Instrument(reg)
	r := h.NewRegion("rt", KindRuntime, 10)
	s := h.NewSpace("s")
	s.MapRegion(r)
	s.DirtyPage(r, 0)
	s.AllocPrivate(KindHeap, 4)

	if got := reg.Gauge("mem_private_frames").Value(); got != 5 {
		t.Fatalf("mem_private_frames = %d, want 5", got)
	}
	// The sole sharer split page 0, so its base frame was reclaimed:
	// 9 shared frames remain.
	if got := reg.Gauge("mem_shared_frames").Value(); got != 9 {
		t.Fatalf("mem_shared_frames = %d, want 9", got)
	}
	if got := reg.Gauge("mem_swapped_frames").Value(); got != 0 {
		t.Fatalf("mem_swapped_frames = %d, want 0", got)
	}
	if got := reg.Gauge("mem_high_water_bytes").Value(); got != 14*PageSize {
		t.Fatalf("mem_high_water_bytes = %d", got)
	}
	if got := reg.Counter(metrics.Name("mem_cow_faults_by_kind", "kind", "runtime")).Value(); got != 1 {
		t.Fatalf("per-kind cow counter = %d", got)
	}
	// Teardown observes the space's final PSS into mem_pss_bytes.
	wantPSS := s.PSS()
	s.Free()
	hist := reg.HistogramWith("mem_pss_bytes", "bytes", pssBuckets())
	if hist.Count() != 1 {
		t.Fatalf("mem_pss_bytes count = %d, want 1", hist.Count())
	}
	if got := hist.Sum(); got != wantPSS {
		t.Fatalf("mem_pss_bytes sum = %v, want %v", got, wantPSS)
	}
	if got := reg.Gauge("mem_high_water_bytes").Value(); got != 14*PageSize {
		t.Fatalf("high water after teardown = %d", got)
	}
}

// TestSwappedFramesGauge crosses the swap threshold and checks the
// swapped-frame estimate tracks the excess.
func TestSwappedFramesGauge(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHost(100*PageSize, 0.5) // threshold: 50 pages
	h.Instrument(reg)
	s := h.NewSpace("s")
	s.AllocPrivate(KindHeap, 60)
	if got := reg.Gauge("mem_swapped_frames").Value(); got != 10 {
		t.Fatalf("mem_swapped_frames = %d, want 10", got)
	}
	rep := h.Report()
	if rep.SwappedBytes != 10*PageSize || !rep.Swapping {
		t.Fatalf("report swap = %+v", rep)
	}
	s.FreePrivate(KindHeap, 20)
	if got := reg.Gauge("mem_swapped_frames").Value(); got != 0 {
		t.Fatalf("mem_swapped_frames after free = %d, want 0", got)
	}
	s.Free()
}

// TestConcurrentReportRace hammers Report while spaces churn — the
// report walks every space under the host lock, so this must be clean
// under -race.
func TestConcurrentReportRace(t *testing.T) {
	h := NewHost(1<<30, 0.6)
	r := h.NewRegion("rt", KindRuntime, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := h.NewSpace("s")
				s.MapRegion(r)
				s.DirtyPages(r, (g+1)*7%64)
				s.AllocPrivate(KindHeap, 3)
				_ = s.PSS()
				s.Free()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			rep := h.Report()
			if !rep.PSSPageExact {
				t.Errorf("mid-churn report not page-exact: pss %v used %d", rep.PSSSumBytes, rep.UsedBytes)
				return
			}
		}
	}()
	wg.Wait()
	if h.Used() != 0 {
		t.Fatalf("leak: used = %d", h.Used())
	}
}
