// Package mem models guest-physical memory for the Fireworks simulation:
// page-granular sharing of snapshot images across microVMs, copy-on-write
// splitting, and the PSS (proportional set size) accounting that the
// paper's memory experiments (Figures 10 and 12) are built on.
//
// # Model
//
// Memory is grouped into Regions: named sets of pages whose frames are
// shared by every address space that maps the region (exactly how a
// MAP_PRIVATE snapshot file mapping behaves in Firecracker). When a guest
// writes to a shared page, the page is CoW-split: the writing address
// space gets a private copy, and the base frame's sharer count for that
// page drops by one. Per-page sharer counts are kept sparsely, so a
// 512 MiB guest costs a handful of map entries rather than 131072 of
// them, while PSS remains page-exact.
//
// A Host tracks total physical frame usage against a capacity and a
// swappiness threshold, reproducing the "launch microVMs until swapping
// starts" methodology of §5.4.
package mem

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// PageSize is the guest page size in bytes (4 KiB, matching x86-64).
const PageSize = 4096

// Kind labels what a region or private allocation holds. The factor
// analysis in Figure 12 reports savings per kind.
type Kind string

const (
	KindKernel  Kind = "kernel"  // guest kernel + boot pages
	KindRuntime Kind = "runtime" // language runtime text/data
	KindLibrary Kind = "library" // loaded packages/modules
	KindJITCode Kind = "jitcode" // JIT-compiled machine code
	KindHeap    Kind = "heap"    // application heap
	KindAnon    Kind = "anon"    // miscellaneous anonymous memory
)

// Host models the physical memory of one server.
type Host struct {
	mu           sync.Mutex
	capacity     uint64 // bytes of physical memory
	swappiness   float64
	usedPages    uint64
	privatePages uint64 // pages not backed by a shared region frame
	regions      map[string]*Region
	nextRegion   int

	// Observability (nil-safe; see Instrument).
	cowFaults  *metrics.Counter
	swapEvents *metrics.Counter
	usedGauge  *metrics.Gauge
	privGauge  *metrics.Gauge
	sharedG    *metrics.Gauge
	swapGauge  *metrics.Gauge
}

// NewHost returns a host with the given physical capacity in bytes and a
// vm.swappiness-style threshold: swapping begins once usage exceeds
// swappiness (as a fraction, e.g. 0.6) of capacity.
func NewHost(capacity uint64, swappiness float64) *Host {
	if swappiness <= 0 || swappiness > 1 {
		panic(fmt.Sprintf("mem: swappiness %v out of (0,1]", swappiness))
	}
	return &Host{
		capacity:   capacity,
		swappiness: swappiness,
		regions:    make(map[string]*Region),
	}
}

// Instrument attaches the host to a metrics registry. CoW faults and
// swap-threshold crossings are counted; physical usage is exported as
// gauges split into privately-owned pages and shared region frames
// (the quantity the paper's PSS/USS experiments, Figures 10 and 12,
// are about).
func (h *Host) Instrument(reg *metrics.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cowFaults = reg.Counter("mem_cow_faults_total")
	h.swapEvents = reg.Counter("mem_swap_events_total")
	h.usedGauge = reg.Gauge("mem_used_bytes")
	h.privGauge = reg.Gauge("mem_private_bytes")
	h.sharedG = reg.Gauge("mem_shared_bytes")
	h.swapGauge = reg.Gauge("mem_swapping")
}

// publishLocked refreshes the usage gauges; caller holds h.mu.
func (h *Host) publishLocked() {
	h.usedGauge.Set(int64(h.usedPages) * PageSize)
	h.privGauge.Set(int64(h.privatePages) * PageSize)
	h.sharedG.Set(int64(h.usedPages-h.privatePages) * PageSize)
}

// Capacity returns the host's physical memory in bytes.
func (h *Host) Capacity() uint64 { return h.capacity }

// SwapThreshold returns the usage level (bytes) at which swapping starts.
func (h *Host) SwapThreshold() uint64 {
	return uint64(float64(h.capacity) * h.swappiness)
}

// Used returns the bytes of physical memory currently in use across all
// regions and private allocations.
func (h *Host) Used() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.usedPages * PageSize
}

// Swapping reports whether current usage has crossed the swap threshold.
func (h *Host) Swapping() bool { return h.Used() > h.SwapThreshold() }

func (h *Host) addPages(n int64) { h.adjust(n, 0) }

// adjust moves the host's page accounting: pages is the total physical
// frame delta, private the subset that is privately owned (anonymous
// allocations and CoW copies). Shared frame usage is derived as
// total - private. Crossing the swap threshold upward counts one swap
// event.
func (h *Host) adjust(pages, private int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	next := int64(h.usedPages) + pages
	if next < 0 {
		panic("mem: host page accounting went negative")
	}
	nextPriv := int64(h.privatePages) + private
	if nextPriv < 0 {
		panic("mem: host private-page accounting went negative")
	}
	thr := int64(float64(h.capacity)*h.swappiness) / PageSize
	wasSwapping := int64(h.usedPages) > thr
	h.usedPages = uint64(next)
	h.privatePages = uint64(nextPriv)
	nowSwapping := next > thr
	if nowSwapping && !wasSwapping {
		h.swapEvents.Inc()
	}
	if nowSwapping != wasSwapping {
		v := int64(0)
		if nowSwapping {
			v = 1
		}
		h.swapGauge.Set(v)
	}
	h.publishLocked()
}

// NewRegion creates a shareable region of pages on this host. The
// region's frames occupy physical memory only while at least one address
// space maps it.
func (h *Host) NewRegion(name string, kind Kind, pages int) *Region {
	if pages < 0 {
		panic("mem: negative region size")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextRegion++
	r := &Region{
		host:      h,
		name:      fmt.Sprintf("%s#%d", name, h.nextRegion),
		kind:      kind,
		pages:     pages,
		dirtied:   make(map[int]int),
		freedBase: make(map[int]bool),
	}
	h.regions[r.name] = r
	return r
}

// Region is a named group of pages shared CoW among address spaces.
type Region struct {
	host    *Host
	name    string
	kind    Kind
	pages   int
	sharers int
	// dirtied[p] = number of spaces that CoW-split page p and therefore
	// no longer reference the base frame. Sparse: absent means zero.
	dirtied map[int]int
	// freedBase marks pages whose base frame has been reclaimed because
	// every current sharer CoW-split it (the file-backed page becomes
	// evictable page cache and stops counting against physical memory).
	freedBase map[int]bool
}

// recheckPage reconciles page p's base frame with its referent count and
// returns the host page delta (-1 reclaimed, +1 re-materialized, 0
// unchanged). Caller holds the host lock and applies the delta.
func (r *Region) recheckPage(p int) int {
	base := r.sharers - r.dirtied[p]
	switch {
	case base <= 0 && !r.freedBase[p] && r.sharers > 0:
		r.freedBase[p] = true
		return -1
	case base > 0 && r.freedBase[p]:
		delete(r.freedBase, p)
		return 1
	default:
		return 0
	}
}

// Name returns the unique region name, Kind its content label, and Pages
// its size in pages.
func (r *Region) Name() string { return r.name }
func (r *Region) Kind() Kind   { return r.kind }
func (r *Region) Pages() int   { return r.pages }

// Sharers returns the number of address spaces currently mapping the
// region.
func (r *Region) Sharers() int {
	r.host.mu.Lock()
	defer r.host.mu.Unlock()
	return r.sharers
}

// Space is one address space (one microVM's guest-physical memory, or one
// container's memory image).
type Space struct {
	host    *Host
	name    string
	refs    map[string]*regionRef
	private map[Kind]int // private page counts by kind (anon + CoW copies)
	freed   bool
}

type regionRef struct {
	region *Region
	dirty  map[int]bool // pages this space has CoW-split
}

// NewSpace creates an empty address space on the host.
func (h *Host) NewSpace(name string) *Space {
	return &Space{
		host:    h,
		name:    name,
		refs:    make(map[string]*regionRef),
		private: make(map[Kind]int),
	}
}

// Name returns the space's name.
func (s *Space) Name() string { return s.name }

// MapRegion maps a shared region into this space. Mapping the same region
// twice is an error in the simulated stack and panics.
func (s *Space) MapRegion(r *Region) {
	s.mustLive()
	if _, ok := s.refs[r.name]; ok {
		panic(fmt.Sprintf("mem: region %s mapped twice into %s", r.name, s.name))
	}
	s.refs[r.name] = &regionRef{region: r, dirty: make(map[int]bool)}
	h := s.host
	h.mu.Lock()
	r.sharers++
	var delta int64
	if r.sharers == 1 {
		delta += int64(r.pages) // frames materialize on first mapping
	}
	// A new sharer re-references base frames that were reclaimed when
	// every previous sharer had split them.
	for p := range r.freedBase {
		delta += int64(r.recheckPage(p))
	}
	h.mu.Unlock()
	if delta != 0 {
		h.addPages(delta)
	}
}

// DirtyPage CoW-splits one page of a mapped region: this space gets a
// private copy. Dirtying an already-split page is a no-op (the private
// copy is simply written again). It reports whether a CoW fault occurred.
func (s *Space) DirtyPage(r *Region, page int) bool {
	s.mustLive()
	ref, ok := s.refs[r.name]
	if !ok {
		panic(fmt.Sprintf("mem: dirty of unmapped region %s in %s", r.name, s.name))
	}
	if page < 0 || page >= r.pages {
		panic(fmt.Sprintf("mem: page %d out of range for region %s (%d pages)", page, r.name, r.pages))
	}
	if ref.dirty[page] {
		return false
	}
	ref.dirty[page] = true
	h := s.host
	h.mu.Lock()
	r.dirtied[page]++
	delta := int64(1) + int64(r.recheckPage(page))
	h.mu.Unlock()
	s.private[r.kind]++
	h.cowFaults.Inc()
	// The CoW copy is a new private page; the recheck remainder adjusts
	// shared base frames.
	h.adjust(delta, 1)
	return true
}

// DirtyPages CoW-splits the first n pages of the region (a convenient
// stand-in for "the working set touched during execution") and returns
// the number of actual faults.
func (s *Space) DirtyPages(r *Region, n int) int {
	if n > r.pages {
		n = r.pages
	}
	faults := 0
	for p := 0; p < n; p++ {
		if s.DirtyPage(r, p) {
			faults++
		}
	}
	return faults
}

// AllocPrivate allocates n private anonymous pages of the given kind.
func (s *Space) AllocPrivate(kind Kind, pages int) {
	s.mustLive()
	if pages < 0 {
		panic("mem: negative private allocation")
	}
	s.private[kind] += pages
	s.host.adjust(int64(pages), int64(pages))
}

// FreePrivate releases n private pages of the given kind.
func (s *Space) FreePrivate(kind Kind, pages int) {
	s.mustLive()
	if s.private[kind] < pages {
		panic(fmt.Sprintf("mem: freeing %d %s pages but only %d allocated", pages, kind, s.private[kind]))
	}
	s.private[kind] -= pages
	s.host.adjust(-int64(pages), -int64(pages))
}

// Free releases everything the space holds: region mappings (dropping
// per-page sharer counts, reclaiming base frames that lost their last
// referent) and private pages. The space is unusable afterwards.
func (s *Space) Free() {
	s.mustLive()
	h := s.host
	var dirtyTotal int64
	for _, ref := range s.refs {
		r := ref.region
		dirtyTotal += int64(len(ref.dirty))
		h.mu.Lock()
		// Our private CoW copies are released.
		delta := -int64(len(ref.dirty))
		for p := range ref.dirty {
			r.dirtied[p]--
			if r.dirtied[p] == 0 {
				delete(r.dirtied, p)
			}
		}
		r.sharers--
		if r.sharers == 0 {
			// Region goes dormant: release every base frame that was
			// not already reclaimed.
			delta -= int64(r.pages - len(r.freedBase))
			r.freedBase = make(map[int]bool)
		} else {
			// Our departure may orphan base frames of pages every
			// remaining sharer has split, or re-balance ones we split.
			for p := range r.dirtied {
				delta += int64(r.recheckPage(p))
			}
			for p := range r.freedBase {
				delta += int64(r.recheckPage(p))
			}
		}
		h.mu.Unlock()
		// -len(ref.dirty) of delta is this space's CoW copies (private);
		// the rest adjusts shared base frames.
		h.adjust(delta, -int64(len(ref.dirty)))
	}
	var privatePages int64
	for _, n := range s.private {
		privatePages += int64(n)
	}
	// Region CoW copies were already subtracted above; subtract only
	// the remaining pure-anonymous portion.
	h.adjust(-(privatePages-dirtyTotal), -(privatePages-dirtyTotal))
	s.refs = nil
	s.private = nil
	s.freed = true
}

func (s *Space) mustLive() {
	if s.freed {
		panic(fmt.Sprintf("mem: use of freed space %s", s.name))
	}
}

// PrivatePages returns the number of private pages of one kind.
func (s *Space) PrivatePages(kind Kind) int { return s.private[kind] }

// RSS returns the resident set size in bytes: all mapped shared pages
// plus all private pages (how `top` would see the microVM process).
func (s *Space) RSS() uint64 {
	s.mustLive()
	var pages uint64
	for _, ref := range s.refs {
		// Shared pages still referenced (not CoW-split by this space).
		pages += uint64(ref.region.pages - len(ref.dirty))
	}
	for _, n := range s.private {
		pages += uint64(n)
	}
	return pages * PageSize
}

// PSS returns the proportional set size in bytes, exactly as smem
// computes it: each private page counts fully; each shared page counts
// 1/N where N is the number of spaces still referencing that base frame.
func (s *Space) PSS() float64 {
	s.mustLive()
	var pss float64
	for _, n := range s.private {
		pss += float64(n) * PageSize
	}
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ref := range s.refs {
		r := ref.region
		// Pages nobody split: shared by all current sharers.
		clean := r.pages - len(r.dirtied)
		if r.sharers > 0 {
			pss += float64(clean) * PageSize / float64(r.sharers)
		}
		// Pages split by someone: this space shares the base frame only
		// if it did not split the page itself.
		for p, nSplit := range r.dirtied {
			if ref.dirty[p] {
				continue // our copy already counted as private
			}
			base := r.sharers - nSplit
			if base > 0 {
				pss += PageSize / float64(base)
			}
		}
	}
	return pss
}

// USS returns the unique set size in bytes: private pages plus shared
// pages mapped by no other space.
func (s *Space) USS() uint64 {
	s.mustLive()
	var pages uint64
	for _, n := range s.private {
		pages += uint64(n)
	}
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ref := range s.refs {
		r := ref.region
		if r.sharers == 1 {
			pages += uint64(r.pages - len(ref.dirty))
		} else {
			for p, nSplit := range r.dirtied {
				if !ref.dirty[p] && r.sharers-nSplit == 1 {
					pages++
				}
			}
			if len(r.dirtied) == 0 {
				continue
			}
		}
	}
	return pages * PageSize
}

// BreakdownByKind returns this space's PSS decomposed by content kind,
// used by the Figure 12 factor analysis.
func (s *Space) BreakdownByKind() map[Kind]float64 {
	s.mustLive()
	out := make(map[Kind]float64)
	for kind, n := range s.private {
		out[kind] += float64(n) * PageSize
	}
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ref := range s.refs {
		r := ref.region
		clean := r.pages - len(r.dirtied)
		if r.sharers > 0 {
			out[r.kind] += float64(clean) * PageSize / float64(r.sharers)
		}
		for p, nSplit := range r.dirtied {
			if ref.dirty[p] {
				continue
			}
			if base := r.sharers - nSplit; base > 0 {
				out[r.kind] += PageSize / float64(base)
			}
		}
	}
	return out
}

// Kinds returns the deterministic ordering of kinds used in reports.
func Kinds() []Kind {
	ks := []Kind{KindKernel, KindRuntime, KindLibrary, KindJITCode, KindHeap, KindAnon}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// PagesFor returns the number of pages needed to hold n bytes.
func PagesFor(bytes uint64) int {
	return int((bytes + PageSize - 1) / PageSize)
}
