// Package mem models guest-physical memory for the Fireworks simulation:
// page-granular sharing of snapshot images across microVMs, copy-on-write
// splitting, and the PSS (proportional set size) accounting that the
// paper's memory experiments (Figures 10 and 12) are built on.
//
// # Model
//
// Memory is grouped into Regions: named sets of pages whose frames are
// shared by every address space that maps the region (exactly how a
// MAP_PRIVATE snapshot file mapping behaves in Firecracker). When a guest
// writes to a shared page, the page is CoW-split: the writing address
// space gets a private copy, and the base frame's sharer count for that
// page drops by one. Per-page sharer counts are kept sparsely, so a
// 512 MiB guest costs a handful of map entries rather than 131072 of
// them, while PSS remains page-exact.
//
// A Host tracks total physical frame usage against a capacity and a
// swappiness threshold, reproducing the "launch microVMs until swapping
// starts" methodology of §5.4. It also tracks every live Space and
// Region, from which Report derives the smem-style fleet table and the
// per-region page lineage (see report.go and docs/memory.md).
//
// All Space and Region state is guarded by the owning Host's mutex, so
// a fleet report can walk every address space concurrently with the
// spaces' owners mutating them.
package mem

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// PageSize is the guest page size in bytes (4 KiB, matching x86-64).
const PageSize = 4096

// Kind labels what a region or private allocation holds. The factor
// analysis in Figure 12 reports savings per kind.
type Kind string

const (
	KindKernel  Kind = "kernel"  // guest kernel + boot pages
	KindRuntime Kind = "runtime" // language runtime text/data
	KindLibrary Kind = "library" // loaded packages/modules
	KindJITCode Kind = "jitcode" // JIT-compiled machine code
	KindHeap    Kind = "heap"    // application heap
	KindAnon    Kind = "anon"    // miscellaneous anonymous memory
)

// Host models the physical memory of one server.
type Host struct {
	mu           sync.Mutex
	capacity     uint64 // bytes of physical memory
	swappiness   float64
	usedPages    uint64
	privatePages uint64 // pages not backed by a shared region frame
	maxUsedPages uint64 // high-water mark of usedPages
	regions      map[string]*Region
	nextRegion   int
	spaces       map[int]*Space // live address spaces by creation seq
	nextSpace    int

	// Observability (nil-safe; see Instrument).
	cowFaults  *metrics.Counter
	cowByKind  map[Kind]*metrics.Counter
	swapEvents *metrics.Counter
	usedGauge  *metrics.Gauge
	privGauge  *metrics.Gauge
	sharedG    *metrics.Gauge
	swapGauge  *metrics.Gauge
	privFrames *metrics.Gauge
	sharFrames *metrics.Gauge
	swapFrames *metrics.Gauge
	highWaterG *metrics.Gauge
	pssHist    *metrics.Histogram
}

// NewHost returns a host with the given physical capacity in bytes and a
// vm.swappiness-style threshold: swapping begins once usage exceeds
// swappiness (as a fraction, e.g. 0.6) of capacity.
func NewHost(capacity uint64, swappiness float64) *Host {
	if swappiness <= 0 || swappiness > 1 {
		panic(fmt.Sprintf("mem: swappiness %v out of (0,1]", swappiness))
	}
	return &Host{
		capacity:   capacity,
		swappiness: swappiness,
		regions:    make(map[string]*Region),
		spaces:     make(map[int]*Space),
	}
}

// pssBuckets are the mem_pss_bytes histogram bounds: 1 MiB … 1 GiB,
// log2-spaced — the range the paper's per-microVM PSS numbers live in.
func pssBuckets() []float64 {
	var bounds []float64
	for b := uint64(1 << 20); b <= 1<<30; b <<= 1 {
		bounds = append(bounds, float64(b))
	}
	return bounds
}

// Instrument attaches the host to a metrics registry. CoW faults are
// counted in total and by page kind; physical usage is exported as
// byte gauges split into privately-owned pages and shared region frames
// (the quantity the paper's PSS/USS experiments, Figures 10 and 12, are
// about) plus the matching frame-count gauges, the swapped-frame
// estimate, and the usage high-water mark. mem_pss_bytes observes each
// space's final PSS at teardown (smem's per-process column, sampled at
// the end of life).
func (h *Host) Instrument(reg *metrics.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cowFaults = reg.Counter("mem_cow_faults_total")
	h.cowByKind = make(map[Kind]*metrics.Counter)
	for _, k := range Kinds() {
		h.cowByKind[k] = reg.Counter(metrics.Name("mem_cow_faults_by_kind", "kind", string(k)))
	}
	h.swapEvents = reg.Counter("mem_swap_events_total")
	h.usedGauge = reg.Gauge("mem_used_bytes")
	h.privGauge = reg.Gauge("mem_private_bytes")
	h.sharedG = reg.Gauge("mem_shared_bytes")
	h.swapGauge = reg.Gauge("mem_swapping")
	h.privFrames = reg.Gauge("mem_private_frames")
	h.sharFrames = reg.Gauge("mem_shared_frames")
	h.swapFrames = reg.Gauge("mem_swapped_frames")
	h.highWaterG = reg.Gauge("mem_high_water_bytes")
	h.pssHist = reg.HistogramWith("mem_pss_bytes", "bytes", pssBuckets())
}

// publishLocked refreshes the usage gauges; caller holds h.mu.
func (h *Host) publishLocked() {
	h.usedGauge.Set(int64(h.usedPages) * PageSize)
	h.privGauge.Set(int64(h.privatePages) * PageSize)
	h.sharedG.Set(int64(h.usedPages-h.privatePages) * PageSize)
	h.privFrames.Set(int64(h.privatePages))
	h.sharFrames.Set(int64(h.usedPages - h.privatePages))
	h.swapFrames.Set(int64(h.swappedPagesLocked()))
	h.highWaterG.Set(int64(h.maxUsedPages) * PageSize)
}

// swappedPagesLocked estimates the frames the kernel would have pushed
// to swap: usage beyond the swappiness threshold. Caller holds h.mu.
func (h *Host) swappedPagesLocked() uint64 {
	thr := uint64(float64(h.capacity)*h.swappiness) / PageSize
	if h.usedPages <= thr {
		return 0
	}
	return h.usedPages - thr
}

// Capacity returns the host's physical memory in bytes.
func (h *Host) Capacity() uint64 { return h.capacity }

// SwapThreshold returns the usage level (bytes) at which swapping starts.
func (h *Host) SwapThreshold() uint64 {
	return uint64(float64(h.capacity) * h.swappiness)
}

// Used returns the bytes of physical memory currently in use across all
// regions and private allocations.
func (h *Host) Used() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.usedPages * PageSize
}

// HighWater returns the highest usage (bytes) the host has ever reached
// — the swap-pressure watermark the memory timeline reports.
func (h *Host) HighWater() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxUsedPages * PageSize
}

// Swapping reports whether current usage has crossed the swap threshold.
func (h *Host) Swapping() bool { return h.Used() > h.SwapThreshold() }

func (h *Host) addPages(n int64) { h.adjust(n, 0) }

func (h *Host) adjust(pages, private int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.adjustLocked(pages, private)
}

// adjustLocked moves the host's page accounting: pages is the total
// physical frame delta, private the subset that is privately owned
// (anonymous allocations and CoW copies). Shared frame usage is derived
// as total - private. Crossing the swap threshold upward counts one
// swap event. Caller holds h.mu.
func (h *Host) adjustLocked(pages, private int64) {
	next := int64(h.usedPages) + pages
	if next < 0 {
		panic("mem: host page accounting went negative")
	}
	nextPriv := int64(h.privatePages) + private
	if nextPriv < 0 {
		panic("mem: host private-page accounting went negative")
	}
	thr := int64(float64(h.capacity)*h.swappiness) / PageSize
	wasSwapping := int64(h.usedPages) > thr
	h.usedPages = uint64(next)
	h.privatePages = uint64(nextPriv)
	if h.usedPages > h.maxUsedPages {
		h.maxUsedPages = h.usedPages
	}
	nowSwapping := next > thr
	if nowSwapping && !wasSwapping {
		h.swapEvents.Inc()
	}
	if nowSwapping != wasSwapping {
		v := int64(0)
		if nowSwapping {
			v = 1
		}
		h.swapGauge.Set(v)
	}
	h.publishLocked()
}

// NewRegion creates a shareable region of pages on this host. The
// region's frames occupy physical memory only while at least one address
// space maps it.
func (h *Host) NewRegion(name string, kind Kind, pages int) *Region {
	if pages < 0 {
		panic("mem: negative region size")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextRegion++
	r := &Region{
		host:      h,
		seq:       h.nextRegion,
		name:      fmt.Sprintf("%s#%d", name, h.nextRegion),
		kind:      kind,
		pages:     pages,
		dirtied:   make(map[int]int),
		freedBase: make(map[int]bool),
	}
	h.regions[r.name] = r
	return r
}

// Region is a named group of pages shared CoW among address spaces.
type Region struct {
	host    *Host
	seq     int // creation order, for deterministic reports
	name    string
	kind    Kind
	pages   int
	sharers int
	faults  uint64 // lifetime CoW faults attributed to this region
	// dirtied[p] = number of spaces that CoW-split page p and therefore
	// no longer reference the base frame. Sparse: absent means zero.
	dirtied map[int]int
	// freedBase marks pages whose base frame has been reclaimed because
	// every current sharer CoW-split it (the file-backed page becomes
	// evictable page cache and stops counting against physical memory).
	freedBase map[int]bool
}

// recheckPage reconciles page p's base frame with its referent count and
// returns the host page delta (-1 reclaimed, +1 re-materialized, 0
// unchanged). Caller holds the host lock and applies the delta.
func (r *Region) recheckPage(p int) int {
	base := r.sharers - r.dirtied[p]
	switch {
	case base <= 0 && !r.freedBase[p] && r.sharers > 0:
		r.freedBase[p] = true
		return -1
	case base > 0 && r.freedBase[p]:
		delete(r.freedBase, p)
		return 1
	default:
		return 0
	}
}

// Name returns the unique region name, Kind its content label, and Pages
// its size in pages.
func (r *Region) Name() string { return r.name }
func (r *Region) Kind() Kind   { return r.kind }
func (r *Region) Pages() int   { return r.pages }

// Sharers returns the number of address spaces currently mapping the
// region.
func (r *Region) Sharers() int {
	r.host.mu.Lock()
	defer r.host.mu.Unlock()
	return r.sharers
}

// Faults returns the lifetime CoW faults taken against this region.
func (r *Region) Faults() uint64 {
	r.host.mu.Lock()
	defer r.host.mu.Unlock()
	return r.faults
}

// Space is one address space (one microVM's guest-physical memory, or one
// container's memory image).
type Space struct {
	host    *Host
	seq     int // creation order, for deterministic reports
	name    string
	refs    map[string]*regionRef
	private map[Kind]int // private page counts by kind (anon + CoW copies)
	freed   bool
}

type regionRef struct {
	region *Region
	dirty  map[int]bool // pages this space has CoW-split
}

// NewSpace creates an empty address space on the host and registers it
// for fleet reports; Free unregisters it.
func (h *Host) NewSpace(name string) *Space {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextSpace++
	s := &Space{
		host:    h,
		seq:     h.nextSpace,
		name:    name,
		refs:    make(map[string]*regionRef),
		private: make(map[Kind]int),
	}
	h.spaces[s.seq] = s
	return s
}

// Spaces returns the live address spaces in creation order.
func (h *Host) Spaces() []*Space {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Space, 0, len(h.spaces))
	for _, s := range h.spaces {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Name returns the space's name.
func (s *Space) Name() string { return s.name }

// MapRegion maps a shared region into this space. Mapping the same region
// twice is an error in the simulated stack and panics.
func (s *Space) MapRegion(r *Region) {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	if _, ok := s.refs[r.name]; ok {
		panic(fmt.Sprintf("mem: region %s mapped twice into %s", r.name, s.name))
	}
	s.refs[r.name] = &regionRef{region: r, dirty: make(map[int]bool)}
	r.sharers++
	var delta int64
	if r.sharers == 1 {
		delta += int64(r.pages) // frames materialize on first mapping
	}
	// A new sharer re-references base frames that were reclaimed when
	// every previous sharer had split them.
	for p := range r.freedBase {
		delta += int64(r.recheckPage(p))
	}
	if delta != 0 {
		h.adjustLocked(delta, 0)
	}
}

// DirtyPage CoW-splits one page of a mapped region: this space gets a
// private copy. Dirtying an already-split page is a no-op (the private
// copy is simply written again). It reports whether a CoW fault occurred.
func (s *Space) DirtyPage(r *Region, page int) bool {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	ref, ok := s.refs[r.name]
	if !ok {
		panic(fmt.Sprintf("mem: dirty of unmapped region %s in %s", r.name, s.name))
	}
	if page < 0 || page >= r.pages {
		panic(fmt.Sprintf("mem: page %d out of range for region %s (%d pages)", page, r.name, r.pages))
	}
	if ref.dirty[page] {
		return false
	}
	ref.dirty[page] = true
	r.dirtied[page]++
	r.faults++
	delta := int64(1) + int64(r.recheckPage(page))
	s.private[r.kind]++
	h.cowFaults.Inc()
	h.cowByKind[r.kind].Inc()
	// The CoW copy is a new private page; the recheck remainder adjusts
	// shared base frames.
	h.adjustLocked(delta, 1)
	return true
}

// DirtyPages CoW-splits the first n pages of the region (a convenient
// stand-in for "the working set touched during execution") and returns
// the number of actual faults.
func (s *Space) DirtyPages(r *Region, n int) int {
	if n > r.pages {
		n = r.pages
	}
	faults := 0
	for p := 0; p < n; p++ {
		if s.DirtyPage(r, p) {
			faults++
		}
	}
	return faults
}

// DirtiedPagesIn returns the pages of r this space has CoW-split, in
// ascending page order — the per-space fault telemetry the snapshot
// layer turns into REAP-style working-set records. Returns nil if the
// region is not mapped here.
func (s *Space) DirtiedPagesIn(r *Region) []int {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	ref, ok := s.refs[r.name]
	if !ok {
		return nil
	}
	pages := make([]int, 0, len(ref.dirty))
	for p := range ref.dirty {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	return pages
}

// AllocPrivate allocates n private anonymous pages of the given kind.
func (s *Space) AllocPrivate(kind Kind, pages int) {
	if pages < 0 {
		panic("mem: negative private allocation")
	}
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	s.private[kind] += pages
	h.adjustLocked(int64(pages), int64(pages))
}

// FreePrivate releases n private pages of the given kind.
func (s *Space) FreePrivate(kind Kind, pages int) {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	if s.private[kind] < pages {
		panic(fmt.Sprintf("mem: freeing %d %s pages but only %d allocated", pages, kind, s.private[kind]))
	}
	s.private[kind] -= pages
	h.adjustLocked(-int64(pages), -int64(pages))
}

// Free releases everything the space holds: region mappings (dropping
// per-page sharer counts, reclaiming base frames that lost their last
// referent) and private pages. The space's final PSS is observed into
// mem_pss_bytes (smem's per-process sample, taken at end of life) and
// the space is unregistered from fleet reports; it is unusable
// afterwards.
func (s *Space) Free() {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	if h.pssHist != nil {
		h.pssHist.Observe(s.pssLocked())
	}
	var dirtyTotal int64
	for _, ref := range s.refs {
		r := ref.region
		dirtyTotal += int64(len(ref.dirty))
		// Our private CoW copies are released.
		delta := -int64(len(ref.dirty))
		for p := range ref.dirty {
			r.dirtied[p]--
			if r.dirtied[p] == 0 {
				delete(r.dirtied, p)
			}
		}
		r.sharers--
		if r.sharers == 0 {
			// Region goes dormant: release every base frame that was
			// not already reclaimed.
			delta -= int64(r.pages - len(r.freedBase))
			r.freedBase = make(map[int]bool)
		} else {
			// Our departure may orphan base frames of pages every
			// remaining sharer has split, or re-balance ones we split.
			for p := range r.dirtied {
				delta += int64(r.recheckPage(p))
			}
			for p := range r.freedBase {
				delta += int64(r.recheckPage(p))
			}
		}
		// -len(ref.dirty) of delta is this space's CoW copies (private);
		// the rest adjusts shared base frames.
		h.adjustLocked(delta, -int64(len(ref.dirty)))
	}
	var privatePages int64
	for _, n := range s.private {
		privatePages += int64(n)
	}
	// Region CoW copies were already subtracted above; subtract only
	// the remaining pure-anonymous portion.
	h.adjustLocked(-(privatePages - dirtyTotal), -(privatePages - dirtyTotal))
	delete(h.spaces, s.seq)
	s.refs = nil
	s.private = nil
	s.freed = true
}

func (s *Space) mustLive() {
	if s.freed {
		panic(fmt.Sprintf("mem: use of freed space %s", s.name))
	}
}

// PrivatePages returns the number of private pages of one kind.
func (s *Space) PrivatePages(kind Kind) int {
	s.host.mu.Lock()
	defer s.host.mu.Unlock()
	return s.private[kind]
}

// RSS returns the resident set size in bytes: all mapped shared pages
// plus all private pages (how `top` would see the microVM process).
func (s *Space) RSS() uint64 {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	return s.rssLocked()
}

func (s *Space) rssLocked() uint64 {
	var pages uint64
	for _, ref := range s.refs {
		// Shared pages still referenced (not CoW-split by this space).
		pages += uint64(ref.region.pages - len(ref.dirty))
	}
	for _, n := range s.private {
		pages += uint64(n)
	}
	return pages * PageSize
}

// PSS returns the proportional set size in bytes, exactly as smem
// computes it: each private page counts fully; each shared page counts
// 1/N where N is the number of spaces still referencing that base frame.
func (s *Space) PSS() float64 {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	return s.pssLocked()
}

func (s *Space) pssLocked() float64 {
	var pss float64
	for _, n := range s.private {
		pss += float64(n) * PageSize
	}
	for _, ref := range s.refs {
		r := ref.region
		// Pages nobody split: shared by all current sharers.
		clean := r.pages - len(r.dirtied)
		if r.sharers > 0 {
			pss += float64(clean) * PageSize / float64(r.sharers)
		}
		// Pages split by someone: this space shares the base frame only
		// if it did not split the page itself.
		for p, nSplit := range r.dirtied {
			if ref.dirty[p] {
				continue // our copy already counted as private
			}
			base := r.sharers - nSplit
			if base > 0 {
				pss += PageSize / float64(base)
			}
		}
	}
	return pss
}

// USS returns the unique set size in bytes: private pages plus shared
// pages mapped by no other space.
func (s *Space) USS() uint64 {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	return s.ussLocked()
}

func (s *Space) ussLocked() uint64 {
	var pages uint64
	for _, n := range s.private {
		pages += uint64(n)
	}
	for _, ref := range s.refs {
		r := ref.region
		if r.sharers == 1 {
			pages += uint64(r.pages - len(ref.dirty))
		} else {
			for p, nSplit := range r.dirtied {
				if !ref.dirty[p] && r.sharers-nSplit == 1 {
					pages++
				}
			}
			if len(r.dirtied) == 0 {
				continue
			}
		}
	}
	return pages * PageSize
}

// BreakdownByKind returns this space's PSS decomposed by content kind,
// used by the Figure 12 factor analysis.
func (s *Space) BreakdownByKind() map[Kind]float64 {
	h := s.host
	h.mu.Lock()
	defer h.mu.Unlock()
	s.mustLive()
	return s.breakdownLocked()
}

func (s *Space) breakdownLocked() map[Kind]float64 {
	out := make(map[Kind]float64)
	for kind, n := range s.private {
		out[kind] += float64(n) * PageSize
	}
	for _, ref := range s.refs {
		r := ref.region
		clean := r.pages - len(r.dirtied)
		if r.sharers > 0 {
			out[r.kind] += float64(clean) * PageSize / float64(r.sharers)
		}
		for p, nSplit := range r.dirtied {
			if ref.dirty[p] {
				continue
			}
			if base := r.sharers - nSplit; base > 0 {
				out[r.kind] += PageSize / float64(base)
			}
		}
	}
	return out
}

// Kinds returns the deterministic ordering of kinds used in reports.
func Kinds() []Kind {
	ks := []Kind{KindKernel, KindRuntime, KindLibrary, KindJITCode, KindHeap, KindAnon}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// PagesFor returns the number of pages needed to hold n bytes.
func PagesFor(bytes uint64) int {
	return int((bytes + PageSize - 1) / PageSize)
}
