package platform

import (
	"fmt"
	"time"

	"repro/internal/couchdb"
	"repro/internal/fs"
	"repro/internal/lang"
	"repro/internal/runtime"
	"repro/internal/sandbox"
)

// CostDBProcess is the database-side processing latency per CouchDB
// operation, on top of the sandbox's network cost.
const CostDBProcess = 260 * time.Microsecond

// NativeBinding assembles the host-bridge natives a guest sees: disk
// and network I/O charged at the sandbox's rates, CouchDB access, HTTP
// responses, and same-platform chain invocation. A binding is installed
// per invocation so that charges land on the right clock/breakdown and
// responses reach the right caller.
type NativeBinding struct {
	// Profile prices the guest's I/O.
	Profile sandbox.Profile
	// FS is the guest-visible filesystem.
	FS fs.FS
	// Couch, when set, enables the db_* natives.
	Couch *couchdb.Server
	// Invoke, when set, enables same-platform function chaining.
	Invoke func(name string, params lang.Value, parent *Invocation) (*Invocation, error)
	// Inv is the invocation the charges and response belong to. It may
	// be swapped between invocations via Rebind without re-installing.
	Inv *Invocation
	// Priming suppresses externally visible side effects (HTTP
	// responses, chain invocations) while __fireworks_jit runs the
	// entry with default params at install time.
	Priming bool
}

// Rebind points the binding at a new invocation context.
func (b *NativeBinding) Rebind(inv *Invocation) { b.Inv = inv }

// Install binds the natives into the runtime's globals.
func (b *NativeBinding) Install(rt *runtime.Runtime) {
	natives := make(map[string]*lang.Native)
	reg := func(name string, arity int, fn func(args []lang.Value) (lang.Value, error)) {
		natives[name] = &lang.Native{Name: name, Arity: arity, Fn: fn}
	}

	reg("file_write", 2, func(args []lang.Value) (lang.Value, error) {
		path, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("file_write: path must be string")
		}
		data, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("file_write: data must be string")
		}
		b.chargeDisk(len(data))
		if err := b.FS.WriteFile(path, []byte(data)); err != nil {
			return nil, err
		}
		return int64(len(data)), nil
	})

	reg("file_read", 1, func(args []lang.Value) (lang.Value, error) {
		path, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("file_read: path must be string")
		}
		data, err := b.FS.ReadFile(path)
		if err != nil {
			return nil, err
		}
		b.chargeDisk(len(data))
		return string(data), nil
	})

	reg("file_append", 2, func(args []lang.Value) (lang.Value, error) {
		path, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("file_append: path must be string")
		}
		data, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("file_append: data must be string")
		}
		b.chargeDisk(len(data))
		if err := b.FS.Append(path, []byte(data)); err != nil {
			return nil, err
		}
		return int64(len(data)), nil
	})

	reg("http_respond", 2, func(args []lang.Value) (lang.Value, error) {
		status, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("http_respond: status must be int")
		}
		body, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("http_respond: body must be string")
		}
		// 500-byte header + body, as faas-netlatency sends.
		b.chargeNet(len(body) + 500)
		if !b.Priming && b.Inv != nil {
			b.Inv.Response = &Response{Status: int(status), Header: "x-faas: simulated", Body: body}
		}
		return nil, nil
	})

	if b.Couch != nil {
		reg("db_put", 2, func(args []lang.Value) (lang.Value, error) {
			name, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("db_put: db name must be string")
			}
			docMap, ok := args[1].(*lang.Map)
			if !ok {
				return nil, fmt.Errorf("db_put: doc must be map")
			}
			goDoc, err := runtime.ToGo(docMap)
			if err != nil {
				return nil, err
			}
			b.chargeDB(len(docMap.Items) * 40)
			db := b.Couch.CreateDB(name)
			stored, err := db.Put(couchdb.Document(goDoc.(map[string]any)))
			if err != nil {
				return nil, err
			}
			return runtime.FromGo(map[string]any(stored))
		})

		reg("db_get", 2, func(args []lang.Value) (lang.Value, error) {
			name, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("db_get: db name must be string")
			}
			id, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("db_get: id must be string")
			}
			b.chargeDB(200)
			db, err := b.Couch.DB(name)
			if err != nil {
				return nil, nil // missing database reads as null
			}
			doc, err := db.Get(id)
			if err != nil {
				return nil, nil // missing doc reads as null in guest code
			}
			return runtime.FromGo(map[string]any(doc))
		})

		reg("db_find", 2, func(args []lang.Value) (lang.Value, error) {
			name, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("db_find: db name must be string")
			}
			sel, ok := args[1].(*lang.Map)
			if !ok {
				return nil, fmt.Errorf("db_find: selector must be map")
			}
			goSel, err := runtime.ToGo(sel)
			if err != nil {
				return nil, err
			}
			b.chargeDB(400)
			db, err := b.Couch.DB(name)
			if err != nil {
				return &lang.List{}, nil
			}
			docs := db.Find(goSel.(map[string]any))
			out := &lang.List{}
			for _, doc := range docs {
				v, err := runtime.FromGo(map[string]any(doc))
				if err != nil {
					return nil, err
				}
				out.Items = append(out.Items, v)
			}
			return out, nil
		})

		reg("db_delete", 3, func(args []lang.Value) (lang.Value, error) {
			name, _ := args[0].(string)
			id, _ := args[1].(string)
			rev, _ := args[2].(string)
			b.chargeDB(100)
			db, err := b.Couch.DB(name)
			if err != nil {
				return nil, err
			}
			return nil, db.Delete(id, rev)
		})
	}

	if b.Invoke != nil {
		reg("invoke", 2, func(args []lang.Value) (lang.Value, error) {
			name, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("invoke: function name must be string")
			}
			b.chargeNet(180) // request message to the controller
			child, err := b.Invoke(name, args[1], b.Inv)
			if err != nil {
				if b.Priming {
					// Install-time priming runs the real chain (the
					// paper's __fireworks_jit executes the function for
					// real), but tolerates targets that are not
					// installed yet: they are primed by their own
					// installation.
					return nil, nil
				}
				return nil, fmt.Errorf("invoke %s: %w", name, err)
			}
			return child.Result, nil
		})
	}

	rt.InstallNatives(natives)
}

// chargeDisk advances the clock without marking the "others" phase:
// disk time spent inside the function call is attributed to execution,
// matching the paper's reading of faas-diskio ("the execution time in
// I/O-intensive workloads is mostly determined by the I/O efficiency of
// the sandbox mechanism used").
func (b *NativeBinding) chargeDisk(bytes int) {
	if b.Inv == nil {
		return
	}
	kb := (bytes + 1023) / 1024
	d := b.Profile.DiskOpBase + time.Duration(kb)*b.Profile.DiskPerKB + b.Profile.SyscallOverhead
	b.Inv.Clock.Advance(d)
}

func (b *NativeBinding) chargeNet(bytes int) {
	if b.Inv == nil {
		return
	}
	kb := (bytes + 1023) / 1024
	d := b.Profile.NetOpBase + time.Duration(kb)*b.Profile.NetPerKB + b.Profile.SyscallOverhead
	b.Inv.ChargeOther("net-io", d)
}

func (b *NativeBinding) chargeDB(bytes int) {
	if b.Inv == nil {
		return
	}
	kb := (bytes + 1023) / 1024
	d := b.Profile.NetOpBase + time.Duration(kb)*b.Profile.NetPerKB + b.Profile.SyscallOverhead + CostDBProcess
	b.Inv.ChargeOther("db-io", d)
}
