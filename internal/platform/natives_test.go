package platform

import (
	"strings"
	"testing"

	"repro/internal/runtime"
)

// invokeSnippet installs a one-expression function on OpenWhisk and
// invokes it, returning the error (nil when the guest succeeded).
func invokeSnippet(t *testing.T, body string) error {
	t.Helper()
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	src := "func main(params) {\n" + body + "\n}"
	if _, err := p.Install(Function{Name: "snippet", Source: src, Lang: runtime.LangNode}); err != nil {
		t.Fatalf("install: %v", err)
	}
	_, err := p.Invoke("snippet", MustParams(nil), InvokeOptions{})
	return err
}

// TestNativeArgumentValidation drives every host native's type-error
// path: bad arguments must produce guest-visible errors, never panics.
func TestNativeArgumentValidation(t *testing.T) {
	cases := []struct {
		name, body, wantSub string
	}{
		{"fileWriteBadPath", `return file_write(42, "data");`, "path must be string"},
		{"fileWriteBadData", `return file_write("/f", 42);`, "data must be string"},
		{"fileReadBadPath", `return file_read(null);`, "path must be string"},
		{"fileReadMissing", `return file_read("/nope");`, "does not exist"},
		{"fileAppendBadPath", `return file_append(1, "x");`, "path must be string"},
		{"fileAppendBadData", `return file_append("/f", [1]);`, "data must be string"},
		{"httpRespondBadStatus", `http_respond("ok", "body");`, "status must be int"},
		{"httpRespondBadBody", `http_respond(200, 42);`, "body must be string"},
		{"dbPutBadName", `return db_put(1, {"_id": "x"});`, "db name must be string"},
		{"dbPutBadDoc", `return db_put("d", "not a map");`, "doc must be map"},
		{"dbPutNoID", `return db_put("d", {"k": 1});`, "missing _id"},
		{"dbGetBadName", `return db_get(1, "id");`, "db name must be string"},
		{"dbGetBadID", `return db_get("d", 7);`, "id must be string"},
		{"dbFindBadSelector", `return db_find("d", "x");`, "selector must be map"},
		{"invokeBadName", `return invoke(42, {});`, "function name must be string"},
		{"invokeUnknown", `return invoke("ghost", {});`, "no function"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := invokeSnippet(t, tc.body)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestDBFindOnMissingDatabase(t *testing.T) {
	// Missing databases read as empty result sets, not errors.
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(Function{Name: "q", Lang: runtime.LangNode,
		Source: `func main(params) { return len(db_find("ghostdb", {"k": 1})); }`})
	inv, err := p.Invoke("q", MustParams(nil), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Result != int64(0) {
		t.Fatalf("result = %v", inv.Result)
	}
}

func TestDBDeleteNative(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(Function{Name: "d", Lang: runtime.LangNode,
		Source: `func main(params) {
  let doc = db_put("t", {"_id": "x", "v": 1});
  db_delete("t", "x", doc["_rev"]);
  return db_get("t", "x");
}`})
	inv, err := p.Invoke("d", MustParams(nil), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Result != nil {
		t.Fatalf("deleted doc still reads %v", inv.Result)
	}
}

func TestRebindSwitchesInvocation(t *testing.T) {
	// A warm guest's binding must charge the *current* invocation.
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(Function{Name: "io", Lang: runtime.LangNode,
		Source: `func main(params) { db_put("t", {"_id": "a" + params.i}); return params.i; }`})
	first, err := p.Invoke("io", MustParams(map[string]any{"i": 1}), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Invoke("io", MustParams(map[string]any{"i": 2}), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Breakdown.Others() == 0 {
		t.Fatal("second invocation's others empty: binding still charges the first")
	}
	if first.Breakdown.Total() == 0 || second.Breakdown.Total() == 0 {
		t.Fatal("zero totals")
	}
	// Second is warm and must be cheaper overall.
	if second.Breakdown.Total() >= first.Breakdown.Total() {
		t.Fatalf("warm total %v not below cold %v", second.Breakdown.Total(), first.Breakdown.Total())
	}
}
