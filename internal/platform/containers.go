package platform

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fs"
	"repro/internal/lang"
	"repro/internal/lifecycle"
	"repro/internal/mem"
	"repro/internal/runtime"
	"repro/internal/sandbox"
	"repro/internal/trace"
)

// OpenWhisk controller costs (authentication, action lookup, Kafka
// scheduling). The paper notes OpenWhisk pays "pretty high overhead to
// initialize a container (e.g., authentication and message queue
// initialization) in the case of a cold start".
const (
	costOWColdController = 470 * time.Millisecond
	costOWWarmController = 24 * time.Millisecond
)

// containerPlatform is the shared implementation behind the OpenWhisk
// and gVisor baselines: per-function pools of pausable container guests.
type containerPlatform struct {
	env     *Env
	name    string
	profile sandbox.Profile
	// controller overheads; zero for bare-Docker gVisor.
	coldOverhead time.Duration
	warmOverhead time.Duration
	// chains enables the invoke() native (OpenWhisk can run function
	// chains; the bare sandbox managers cannot — §5.3).
	chains bool
	// pool holds idle warm containers; its keep-alive TTL bounds how
	// long one stays resident on the workload timeline
	// (InvokeOptions.At); zero keeps containers forever (the default
	// for untimed invocations).
	pool *lifecycle.Pool[*containerGuest]

	mu     sync.Mutex
	fns    map[string]*Function
	nextID int
}

// containerGuest is one (possibly paused) container with a loaded
// runtime.
type containerGuest struct {
	id        string
	fn        *Function
	rt        *runtime.Runtime
	space     *mem.Space
	overlay   *fs.Overlay
	binding   *NativeBinding
	heapAlloc bool
}

// NewOpenWhisk returns the OpenWhisk baseline: container sandboxes plus
// controller overhead, with function-chain support. Warm containers are
// kept alive indefinitely (the right model for untimed measurements).
func NewOpenWhisk(env *Env) Platform { return NewOpenWhiskKeepAlive(env, 0) }

// NewOpenWhiskKeepAlive is NewOpenWhisk with a bounded keep-alive: idle
// warm containers expire after ttl on the workload timeline
// (InvokeOptions.At), releasing their memory — the production policy
// ("defer termination of the worker sandbox for a certain period", §2).
func NewOpenWhiskKeepAlive(env *Env, ttl time.Duration) Platform {
	p := &containerPlatform{
		env:          env,
		name:         "openwhisk",
		profile:      sandbox.Profiles(sandbox.ClassContainer),
		coldOverhead: costOWColdController,
		warmOverhead: costOWWarmController,
		chains:       true,
		fns:          make(map[string]*Function),
	}
	p.pool = lifecycle.NewPool(lifecycle.PoolConfig[*containerGuest]{
		TTL:     ttl,
		OnEvict: func(g *containerGuest) { g.space.Free() },
	})
	p.pool.Instrument(env.Metrics, p.name)
	return p
}

// NewGVisor returns the gVisor baseline: runsc sandboxes under plain
// Docker (no controller, no chain support).
func NewGVisor(env *Env) Platform {
	p := &containerPlatform{
		env:     env,
		name:    "gvisor",
		profile: sandbox.Profiles(sandbox.ClassGVisor),
		fns:     make(map[string]*Function),
	}
	p.pool = lifecycle.NewPool(lifecycle.PoolConfig[*containerGuest]{
		OnEvict: func(g *containerGuest) { g.space.Free() },
	})
	p.pool.Instrument(env.Metrics, p.name)
	return p
}

// PlatformName implements Platform.
func (p *containerPlatform) PlatformName() string { return p.name }

// Install implements Platform: container platforms only register the
// function; sandboxes are created lazily at first invocation.
func (p *containerPlatform) Install(fn Function) (*InstallReport, error) {
	if err := validate(&fn); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fns[fn.Name] = &fn
	return &InstallReport{Function: fn.Name}, nil
}

// Remove implements Platform.
func (p *containerPlatform) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.fns[name]; !ok {
		return fmt.Errorf("%s: no function %q", p.name, name)
	}
	for _, g := range p.pool.DrainKey(name) {
		g.space.Free()
	}
	delete(p.fns, name)
	return nil
}

// Invoke implements Platform.
func (p *containerPlatform) Invoke(name string, params lang.Value, opts InvokeOptions) (*Invocation, error) {
	p.mu.Lock()
	fn, ok := p.fns[name]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%s: no function %q", p.name, name)
	}

	inv := opts.Parent
	if inv == nil {
		inv = NewInvocation(name)
	}
	// Request delivery: frontend -> controller -> sandbox.
	paramBytes := encodedSize(params)
	inv.ChargeOther("param-deliver", p.profile.NetOpBase+time.Duration((paramBytes+1023)/1024)*p.profile.NetPerKB)

	guest, mode, err := p.acquire(fn, opts.Mode, inv, opts.At)
	if err != nil {
		observeInvokeError(p.env.Metrics, p.name)
		return nil, err
	}
	inv.Mode = mode
	inv.SandboxID = guest.id

	guest.rt.SetClock(inv.Clock)
	guest.binding.Rebind(inv)

	// Execute the entry point. Whatever the call charged to explicit
	// phases (host-native "others" charges, and the full breakdown of
	// chained child invocations) is subtracted from the measured span;
	// the remainder is this function's own execution time.
	attributedBefore := inv.Breakdown.Total()
	startMark := inv.Clock.Now()
	result, err := guest.rt.Call(fn.EntryName(), params)
	span := inv.Clock.Since(startMark)
	attributed := inv.Breakdown.Total() - attributedBefore
	exec := span - attributed
	inv.Breakdown.Add(trace.PhaseExec, "exec", exec)
	// Sentry-style sandboxes intercept the runtime's own syscalls
	// during computation (gVisor), taxing pure execution.
	if p.profile.ExecOverheadFactor > 0 && exec > 0 {
		tax := time.Duration(float64(exec) * p.profile.ExecOverheadFactor)
		inv.Clock.Advance(tax)
		inv.Breakdown.Add(trace.PhaseExec, "syscall-interception", tax)
	}
	if err != nil {
		p.release(guest, opts.At)
		observeInvokeError(p.env.Metrics, p.name)
		return inv, fmt.Errorf("%s: %s: %w", p.name, name, err)
	}
	inv.Result = result
	inv.Logs += guest.rt.Stdout.String()
	guest.rt.Stdout.Reset()

	// Memory dirtied by this run (heap churn + workload writes), only
	// accounted once per guest: later warm runs reuse the same pages.
	if !guest.heapAlloc {
		guest.space.AllocPrivate(mem.KindHeap,
			mem.PagesFor(guest.rt.Model.HeapPerInvokeBytes+fn.DirtyBytesPerRun))
		guest.heapAlloc = true
	}

	// Response delivery when the function did not answer over HTTP
	// itself.
	if inv.Response == nil {
		body := lang.Format(result)
		inv.ChargeOther("response", p.profile.NetOpBase+time.Duration((len(body)+1023)/1024)*p.profile.NetPerKB)
		inv.Response = &Response{Status: 200, Body: body}
	}

	p.release(guest, opts.At)
	if opts.Parent == nil {
		observeInvocation(p.env.Metrics, p.name, inv)
	}
	return inv, nil
}

// acquire returns a running guest for fn, cold-starting one if needed.
// Pool entries whose keep-alive expired before `at` are terminated
// (their memory released) instead of reused.
func (p *containerPlatform) acquire(fn *Function, mode StartMode, inv *Invocation, at time.Duration) (*containerGuest, StartMode, error) {
	if mode != ModeCold {
		if guest, ok := p.pool.Acquire(fn.Name, at); ok {
			if p.warmOverhead > 0 {
				inv.ChargeStartup("controller", p.warmOverhead)
			}
			inv.ChargeStartup("container-unpause", p.profile.WarmResume)
			return guest, ModeWarm, nil
		}
	}
	if mode == ModeWarm {
		return nil, mode, fmt.Errorf("%s: no warm sandbox for %q", p.name, fn.Name)
	}

	// Cold start: controller work, container creation, runtime boot,
	// application load.
	if p.coldOverhead > 0 {
		inv.ChargeStartup("controller", p.coldOverhead)
	}
	inv.ChargeStartup("container-create", p.profile.ColdCreate)

	p.mu.Lock()
	p.nextID++
	id := fmt.Sprintf("%s-%04d", p.name, p.nextID)
	p.mu.Unlock()

	space := p.env.Mem.NewSpace(id)
	space.AllocPrivate(mem.KindAnon, mem.PagesFor(p.profile.InfraBytes))

	rt := runtime.New(fn.Lang, inv.Clock)
	overlay := fs.NewOverlay(fs.NewMemFS())
	guest := &containerGuest{id: id, fn: fn, rt: rt, space: space, overlay: overlay}
	guest.binding = &NativeBinding{
		Profile: p.profile,
		FS:      overlay,
		Couch:   p.env.Couch,
		Inv:     inv,
	}
	if p.chains {
		guest.binding.Invoke = func(name string, params lang.Value, parent *Invocation) (*Invocation, error) {
			return p.Invoke(name, params, InvokeOptions{Parent: parent})
		}
	}
	guest.binding.Install(rt)

	bootMark := inv.Clock.Now()
	rt.Boot()
	if err := rt.LoadModule(fn.Source); err != nil {
		space.Free()
		return nil, mode, err
	}
	inv.Breakdown.Add(trace.PhaseStartup, "runtime-boot+load", inv.Clock.Since(bootMark))
	space.AllocPrivate(mem.KindRuntime, mem.PagesFor(rt.Model.RuntimeImageBytes))
	space.AllocPrivate(mem.KindLibrary, mem.PagesFor(rt.Model.LibraryBytes))
	return guest, ModeCold, nil
}

// release returns a guest to the warm pool (OpenWhisk's keep-alive),
// stamping it with the invocation's workload-timeline position.
func (p *containerPlatform) release(g *containerGuest, at time.Duration) {
	p.pool.Release(g.fn.Name, g, at)
}

// ExpireIdle implements Platform: terminate every pooled container idle
// past the keep-alive at timeline position now, releasing its memory.
// (Acquire also expires lazily; this is the background reaper that
// reclaims memory for functions that are never called again.)
func (p *containerPlatform) ExpireIdle(now time.Duration) int {
	return p.pool.ExpireIdle(now)
}

// Spaces returns the address spaces of the function's pooled containers
// (implements the harness's MemoryReporter).
func (p *containerPlatform) Spaces(name string) []*mem.Space {
	var out []*mem.Space
	for _, g := range p.pool.Guests(name) {
		out = append(out, g.space)
	}
	return out
}

// WarmCount implements Platform: the idle pool size for a function.
func (p *containerPlatform) WarmCount(name string) int {
	return p.pool.Count(name)
}

// encodedSize estimates the wire size of params.
func encodedSize(params lang.Value) int {
	if params == nil {
		return 2
	}
	data, err := runtime.EncodeJSON(params)
	if err != nil {
		return 64
	}
	return len(data)
}
