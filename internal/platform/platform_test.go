package platform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/runtime"
)

const factSrc = `
func fact(n) {
  if (n < 2) { return 1; }
  return n * fact(n - 1);
}
func main(params) {
  let n = params.n;
  if (n == null) { n = 10; }
  return fact(n);
}
`

func factFn(name string) Function {
	return Function{
		Name:          name,
		Source:        factSrc,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"n": 10},
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		fn   Function
		sub  string
	}{
		{"noName", Function{Source: factSrc, Lang: runtime.LangNode}, "needs a name"},
		{"badLang", Function{Name: "x", Source: factSrc, Lang: "cobol"}, "unknown language"},
		{"syntax", Function{Name: "x", Source: "func (", Lang: runtime.LangNode}, "expected"},
		{"noEntry", Function{Name: "x", Source: "func other(p) { return p; }", Lang: runtime.LangNode}, `lacks entry "main"`},
		{"badArity", Function{Name: "x", Source: "func main(a, b) { return a; }", Lang: runtime.LangNode}, "one params argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(&tc.fn)
			if err == nil || !strings.Contains(err.Error(), tc.sub) {
				t.Fatalf("err = %v, want %q", err, tc.sub)
			}
		})
	}
	ok := factFn("good")
	if err := Validate(&ok); err != nil {
		t.Fatalf("valid function rejected: %v", err)
	}
}

func TestOpenWhiskColdThenWarm(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	if p.PlatformName() != "openwhisk" {
		t.Fatal("name")
	}
	if _, err := p.Install(factFn("fact")); err != nil {
		t.Fatal(err)
	}
	params := MustParams(map[string]any{"n": 10})
	cold, err := p.Invoke("fact", params, InvokeOptions{Mode: ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Mode != ModeCold {
		t.Fatalf("mode = %v", cold.Mode)
	}
	if cold.Result != int64(3628800) {
		t.Fatalf("result = %v", cold.Result)
	}
	warm, err := p.Invoke("fact", params, InvokeOptions{Mode: ModeWarm})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Mode != ModeWarm {
		t.Fatalf("mode = %v", warm.Mode)
	}
	// Warm start-up must be dramatically below cold.
	if warm.Breakdown.Startup() >= cold.Breakdown.Startup()/10 {
		t.Fatalf("warm %v vs cold %v", warm.Breakdown.Startup(), cold.Breakdown.Startup())
	}
	// The cold start pays the OpenWhisk controller + container create.
	if cold.Breakdown.Startup() < costOWColdController {
		t.Fatalf("cold startup %v below controller overhead", cold.Breakdown.Startup())
	}
}

func TestWarmModeWithoutPoolFails(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(factFn("fact"))
	if _, err := p.Invoke("fact", MustParams(nil), InvokeOptions{Mode: ModeWarm}); err == nil {
		t.Fatal("warm invoke without pool succeeded")
	}
}

func TestAutoModeReusesSandbox(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env).(*containerPlatform)
	p.Install(factFn("fact"))
	p.Invoke("fact", MustParams(nil), InvokeOptions{})
	if p.WarmCount("fact") != 1 {
		t.Fatalf("pool = %d", p.WarmCount("fact"))
	}
	inv, err := p.Invoke("fact", MustParams(nil), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Mode != ModeWarm {
		t.Fatal("auto mode did not reuse the warm container")
	}
	if p.WarmCount("fact") != 1 {
		t.Fatalf("pool grew to %d", p.WarmCount("fact"))
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	env := NewEnv(EnvConfig{})
	for _, p := range []Platform{NewOpenWhisk(env), NewGVisor(env), NewFirecracker(env, FCNoSnapshot)} {
		if _, err := p.Invoke("ghost", MustParams(nil), InvokeOptions{}); err == nil {
			t.Errorf("%s: unknown function invoked", p.PlatformName())
		}
		if err := p.Remove("ghost"); err == nil {
			t.Errorf("%s: unknown function removed", p.PlatformName())
		}
	}
}

func TestGVisorSlowerColdThanOpenWhisk(t *testing.T) {
	env := NewEnv(EnvConfig{})
	ow := NewOpenWhisk(env)
	gv := NewGVisor(NewEnv(EnvConfig{}))
	ow.Install(factFn("fact"))
	gv.Install(factFn("fact"))
	owInv, _ := ow.Invoke("fact", MustParams(nil), InvokeOptions{Mode: ModeCold})
	gvInv, _ := gv.Invoke("fact", MustParams(nil), InvokeOptions{Mode: ModeCold})
	if gvInv.Breakdown.Startup() <= owInv.Breakdown.Startup() {
		t.Fatalf("gvisor cold %v not slower than openwhisk %v",
			gvInv.Breakdown.Startup(), owInv.Breakdown.Startup())
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhiskKeepAlive(env, 10*time.Minute).(*containerPlatform)
	p.Install(factFn("fact"))
	params := MustParams(map[string]any{"n": 5})

	// t=0: cold start.
	first, err := p.Invoke("fact", params, InvokeOptions{At: 0})
	if err != nil {
		t.Fatal(err)
	}
	if first.Mode != ModeCold {
		t.Fatalf("first mode = %v", first.Mode)
	}
	// t=5m: inside the keep-alive — warm.
	warm, err := p.Invoke("fact", params, InvokeOptions{At: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Mode != ModeWarm {
		t.Fatalf("in-window mode = %v", warm.Mode)
	}
	// t=20m: the container idled past its TTL — cold again, and the
	// expired container's memory is released.
	memBefore := env.Mem.Used()
	cold, err := p.Invoke("fact", params, InvokeOptions{At: 20 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Mode != ModeCold {
		t.Fatalf("post-TTL mode = %v", cold.Mode)
	}
	// One container expired, one was created: usage should not double.
	if env.Mem.Used() > memBefore+(20<<20) {
		t.Fatalf("memory grew from %d to %d; expired container not freed", memBefore, env.Mem.Used())
	}
}

func TestExpireIdleReapsInBackground(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhiskKeepAlive(env, time.Minute).(*containerPlatform)
	p.Install(factFn("fact"))
	if _, err := p.Invoke("fact", MustParams(nil), InvokeOptions{At: 0}); err != nil {
		t.Fatal(err)
	}
	before := env.Mem.Used()
	if before == 0 {
		t.Fatal("no container memory resident")
	}
	if n := p.ExpireIdle(30 * time.Second); n != 0 {
		t.Fatalf("reaped %d containers before TTL", n)
	}
	if n := p.ExpireIdle(2 * time.Minute); n != 1 {
		t.Fatalf("reaped %d containers after TTL, want 1", n)
	}
	if env.Mem.Used() >= before {
		t.Fatal("reaper did not release memory")
	}
	// Infinite keep-alive never reaps.
	inf := NewOpenWhisk(env).(*containerPlatform)
	inf.Install(factFn("fact2"))
	inf.Invoke("fact2", MustParams(nil), InvokeOptions{At: 0})
	if n := inf.ExpireIdle(time.Hour); n != 0 {
		t.Fatalf("infinite keep-alive reaped %d", n)
	}
}

func TestGVisorExecTax(t *testing.T) {
	// Sentry interception slows pure execution, not just I/O (the
	// paper: "gVisor shows slower cold start-up time and execution
	// time as it enforces additional security checks").
	heavy := Function{Name: "fact", Source: factSrc, Lang: runtime.LangNode}
	ow := NewOpenWhisk(NewEnv(EnvConfig{}))
	gv := NewGVisor(NewEnv(EnvConfig{}))
	ow.Install(heavy)
	gv.Install(heavy)
	params := MustParams(map[string]any{"n": 18})
	owInv, err := ow.Invoke("fact", params, InvokeOptions{Mode: ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	gvInv, err := gv.Invoke("fact", params, InvokeOptions{Mode: ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	if gvInv.Breakdown.Exec() <= owInv.Breakdown.Exec() {
		t.Fatalf("gvisor exec %v not slower than openwhisk %v",
			gvInv.Breakdown.Exec(), owInv.Breakdown.Exec())
	}
	// Conservation still holds with the tax applied.
	if gvInv.Breakdown.Total() != gvInv.Clock.Now() {
		t.Fatalf("breakdown %v != clock %v", gvInv.Breakdown.Total(), gvInv.Clock.Now())
	}
}

func TestFirecrackerColdSlowestWarmComparable(t *testing.T) {
	fcEnv := NewEnv(EnvConfig{})
	fc := NewFirecracker(fcEnv, FCNoSnapshot)
	fc.Install(factFn("fact"))
	cold, err := fc.Invoke("fact", MustParams(nil), InvokeOptions{Mode: ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	// VM create + kernel boot dominate.
	if cold.Breakdown.Startup() < 1200*time.Millisecond {
		t.Fatalf("firecracker cold startup = %v", cold.Breakdown.Startup())
	}
	warm, err := fc.Invoke("fact", MustParams(nil), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Mode != ModeWarm || warm.Breakdown.Startup() > 60*time.Millisecond {
		t.Fatalf("warm: mode=%v startup=%v", warm.Mode, warm.Breakdown.Startup())
	}
	if fcEnv.HV.VMCount() != 1 {
		t.Fatalf("VMs = %d, want 1 pooled", fcEnv.HV.VMCount())
	}
	if err := fc.Remove("fact"); err != nil {
		t.Fatal(err)
	}
	if fcEnv.HV.VMCount() != 0 {
		t.Fatal("Remove leaked VMs")
	}
}

func TestFirecrackerOSSnapshotFasterCold(t *testing.T) {
	plain := NewFirecracker(NewEnv(EnvConfig{}), FCNoSnapshot)
	snap := NewFirecracker(NewEnv(EnvConfig{}), FCOSSnapshot)
	plain.Install(factFn("fact"))
	report, err := snap.Install(factFn("fact"))
	if err != nil {
		t.Fatal(err)
	}
	if report.SnapshotBytes == 0 || report.Duration == 0 {
		t.Fatalf("OS snapshot install report empty: %+v", report)
	}
	pc, _ := plain.Invoke("fact", MustParams(nil), InvokeOptions{Mode: ModeCold})
	sc, err := snap.Invoke("fact", MustParams(nil), InvokeOptions{Mode: ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Breakdown.Startup() >= pc.Breakdown.Startup() {
		t.Fatalf("OS snapshot cold %v not faster than plain %v",
			sc.Breakdown.Startup(), pc.Breakdown.Startup())
	}
	// But it still boots the runtime, so it is well above snapshot-only
	// latency.
	if sc.Breakdown.Startup() < 100*time.Millisecond {
		t.Fatalf("OS snapshot cold %v implausibly fast", sc.Breakdown.Startup())
	}
}

func TestChainsOnlyOnOpenWhisk(t *testing.T) {
	caller := Function{
		Name:   "caller",
		Source: `func main(params) { return invoke("callee", {"n": 5}); }`,
		Lang:   runtime.LangNode,
	}
	// gVisor (bare sandbox manager) cannot run chains: the invoke
	// native is absent, so the call fails.
	gv := NewGVisor(NewEnv(EnvConfig{}))
	gv.Install(caller)
	gv.Install(factFn("callee"))
	if _, err := gv.Invoke("caller", MustParams(nil), InvokeOptions{}); err == nil ||
		!strings.Contains(err.Error(), "undefined variable") {
		t.Fatalf("gvisor chain err = %v", err)
	}
	// OpenWhisk runs the chain and shares the breakdown.
	ow := NewOpenWhisk(NewEnv(EnvConfig{}))
	ow.Install(caller)
	ow.Install(factFn("callee"))
	inv, err := ow.Invoke("caller", MustParams(nil), InvokeOptions{Mode: ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Result != int64(120) {
		t.Fatalf("chain result = %v", inv.Result)
	}
	// Two cold containers' start-up are both in the one breakdown.
	if inv.Breakdown.Startup() < 2*costOWColdController {
		t.Fatalf("chain startup %v misses the child's cold start", inv.Breakdown.Startup())
	}
}

func TestGuestIONatives(t *testing.T) {
	src := `
func main(params) {
  file_write("/data/x.txt", "hello");
  let back = file_read("/data/x.txt");
  file_append("/data/x.txt", "!");
  let full = file_read("/data/x.txt");
  db_put("t", {"_id": "doc1", "v": 42});
  let doc = db_get("t", "doc1");
  let found = db_find("t", {"v": 42});
  http_respond(201, back);
  return {"back": back, "full": full, "doc_v": doc.v, "found": len(found)};
}
`
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(Function{Name: "io", Source: src, Lang: runtime.LangNode})
	inv, err := p.Invoke("io", MustParams(nil), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := inv.Result.(*lang.Map)
	if m.Get("back") != "hello" || m.Get("full") != "hello!" {
		t.Fatalf("file ops: %v", lang.Format(m))
	}
	if m.Get("doc_v") != int64(42) || m.Get("found") != int64(1) {
		t.Fatalf("db ops: %v", lang.Format(m))
	}
	if inv.Response == nil || inv.Response.Status != 201 || inv.Response.Body != "hello" {
		t.Fatalf("response: %+v", inv.Response)
	}
	// DB and response charges land in "others".
	if inv.Breakdown.Others() == 0 {
		t.Fatal("no others time recorded")
	}
}

func TestResultWrappedWhenNoExplicitResponse(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(factFn("fact"))
	inv, _ := p.Invoke("fact", MustParams(map[string]any{"n": 5}), InvokeOptions{})
	if inv.Response == nil || inv.Response.Status != 200 || inv.Response.Body != "120" {
		t.Fatalf("response: %+v", inv.Response)
	}
}

func TestGuestErrorPropagates(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(Function{Name: "bad", Source: "func main(p) { return 1 / 0; }", Lang: runtime.LangNode})
	_, err := p.Invoke("bad", MustParams(nil), InvokeOptions{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestEnvDefaults(t *testing.T) {
	env := NewEnv(EnvConfig{})
	if env.Mem.Capacity() != 128<<30 {
		t.Fatalf("capacity = %d", env.Mem.Capacity())
	}
	if env.Mem.SwapThreshold() != uint64(float64(env.Mem.Capacity())*0.6) {
		t.Fatal("swappiness default wrong")
	}
	if env.Bus == nil || env.Couch == nil || env.Snaps == nil || env.HV == nil || env.Router == nil {
		t.Fatal("env incomplete")
	}
}

func TestBreakdownConservation(t *testing.T) {
	// The breakdown phases must sum exactly to the clock's elapsed
	// virtual time — nothing double-counted, nothing dropped.
	env := NewEnv(EnvConfig{})
	p := NewOpenWhisk(env)
	p.Install(factFn("fact"))
	inv, err := p.Invoke("fact", MustParams(map[string]any{"n": 12}), InvokeOptions{Mode: ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Breakdown.Total() != inv.Clock.Now() {
		t.Fatalf("breakdown %v != clock %v", inv.Breakdown.Total(), inv.Clock.Now())
	}
}
