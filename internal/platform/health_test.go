package platform

import (
	"testing"

	"repro/internal/metrics"
)

func TestHealthName(t *testing.T) {
	cases := map[int64]string{
		HealthHealthy:   "healthy",
		HealthProbation: "probation",
		HealthDown:      "down",
		99:              "unknown",
	}
	for v, want := range cases {
		if got := HealthName(v); got != want {
			t.Errorf("HealthName(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestDeriveFleetHealth(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge(metrics.Name("node_state", "node", "node-00")).Set(HealthHealthy)
	reg.Gauge(metrics.Name("node_state", "node", "node-01")).Set(HealthProbation)
	reg.Gauge("unrelated_gauge").Set(7)

	f := DeriveFleetHealth(reg.Snapshot())
	if f.Status != "ok" || f.Total != 2 || f.Down != 0 {
		t.Fatalf("fleet = %+v", f)
	}
	if f.Nodes["node-00"] != "healthy" || f.Nodes["node-01"] != "probation" {
		t.Fatalf("nodes = %v", f.Nodes)
	}
	if f.AllDown() {
		t.Fatal("AllDown with healthy nodes")
	}

	reg.Gauge(metrics.Name("node_state", "node", "node-01")).Set(HealthDown)
	f = DeriveFleetHealth(reg.Snapshot())
	if f.Status != "degraded" || f.Down != 1 {
		t.Fatalf("degraded fleet = %+v", f)
	}

	reg.Gauge(metrics.Name("node_state", "node", "node-00")).Set(HealthDown)
	f = DeriveFleetHealth(reg.Snapshot())
	if f.Status != "down" || !f.AllDown() {
		t.Fatalf("down fleet = %+v", f)
	}
}

func TestDeriveFleetHealthEmpty(t *testing.T) {
	f := DeriveFleetHealth(metrics.NewRegistry().Snapshot())
	if f.Status != "ok" || f.Total != 0 || f.AllDown() {
		t.Fatalf("empty fleet = %+v", f)
	}
}
