package platform

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fs"
	"repro/internal/lang"
	"repro/internal/lifecycle"
	"repro/internal/mem"
	"repro/internal/runtime"
	"repro/internal/sandbox"
	"repro/internal/trace"
)

// isolatePlatform models Cloudflare Workers (Table 1's "Low (runtime)"
// isolation row): hundreds of V8 isolates inside one long-running
// runtime process. Start-up is creating an isolate (~ms), and memory
// efficiency comes from process sharing — every isolate maps the same
// runtime image and standard-library pages; only per-function module
// code and heap are private. The price is the weakest isolation level:
// all tenants share one process and one kernel.
//
// The paper lists this design in Table 1 but does not evaluate it
// quantitatively; this implementation exists so the whole matrix is
// runnable. Only Node.js is supported (V8 isolates are a JavaScript
// mechanism), and function chains are not (workers call each other over
// HTTP in reality, which the paper's chain semantics do not cover).
type isolatePlatform struct {
	env     *Env
	profile sandbox.Profile
	// pool holds idle isolates awaiting reuse.
	pool *lifecycle.Pool[*isolateGuest]

	mu     sync.Mutex
	fns    map[string]*Function
	nextID int
	// processImage is the single runtime process's shared pages
	// (runtime text + stdlib), mapped by every isolate.
	processImage *mem.Region
}

type isolateGuest struct {
	id        string
	fn        *Function
	rt        *runtime.Runtime
	space     *mem.Space
	binding   *NativeBinding
	heapAlloc bool
}

// NewIsolate returns the V8-isolate (Cloudflare Workers-style) runtime
// sandbox platform.
func NewIsolate(env *Env) Platform {
	model := runtime.ModelFor(runtime.LangNode)
	p := &isolatePlatform{
		env:     env,
		profile: sandbox.Profiles(sandbox.ClassIsolate),
		fns:     make(map[string]*Function),
		processImage: env.Mem.NewRegion("v8-process", mem.KindRuntime,
			mem.PagesFor(model.RuntimeImageBytes+model.LibraryBytes)),
	}
	p.pool = lifecycle.NewPool(lifecycle.PoolConfig[*isolateGuest]{
		OnEvict: func(g *isolateGuest) { g.space.Free() },
	})
	p.pool.Instrument(env.Metrics, "isolate")
	return p
}

// PlatformName implements Platform.
func (p *isolatePlatform) PlatformName() string { return "isolate" }

// Install implements Platform.
func (p *isolatePlatform) Install(fn Function) (*InstallReport, error) {
	if err := validate(&fn); err != nil {
		return nil, err
	}
	if fn.Lang != runtime.LangNode {
		return nil, fmt.Errorf("isolate: only nodejs functions run in V8 isolates, got %q", fn.Lang)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fns[fn.Name] = &fn
	return &InstallReport{Function: fn.Name}, nil
}

// Remove implements Platform.
func (p *isolatePlatform) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.fns[name]; !ok {
		return fmt.Errorf("isolate: no function %q", name)
	}
	for _, g := range p.pool.DrainKey(name) {
		g.space.Free()
	}
	delete(p.fns, name)
	return nil
}

// Invoke implements Platform.
func (p *isolatePlatform) Invoke(name string, params lang.Value, opts InvokeOptions) (*Invocation, error) {
	p.mu.Lock()
	fn, ok := p.fns[name]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("isolate: no function %q", name)
	}
	inv := opts.Parent
	if inv == nil {
		inv = NewInvocation(name)
	}
	inv.ChargeOther("param-deliver", p.profile.NetOpBase+timePerKB(p.profile, encodedSize(params)))

	guest, mode, err := p.acquire(fn, opts.Mode, inv, opts.At)
	if err != nil {
		observeInvokeError(p.env.Metrics, "isolate")
		return nil, err
	}
	inv.Mode = mode
	inv.SandboxID = guest.id
	guest.rt.SetClock(inv.Clock)
	guest.binding.Rebind(inv)

	attributedBefore := inv.Breakdown.Total()
	mark := inv.Clock.Now()
	result, err := guest.rt.Call(fn.EntryName(), params)
	span := inv.Clock.Since(mark)
	inv.Breakdown.Add(trace.PhaseExec, "exec", span-(inv.Breakdown.Total()-attributedBefore))
	if err != nil {
		p.release(guest, opts.At)
		observeInvokeError(p.env.Metrics, "isolate")
		return inv, fmt.Errorf("isolate: %s: %w", name, err)
	}
	inv.Result = result
	inv.Logs += guest.rt.Stdout.String()
	guest.rt.Stdout.Reset()
	if !guest.heapAlloc {
		// Isolates have small private heaps (V8 heap limits per
		// worker); the process image stays shared.
		guest.space.AllocPrivate(mem.KindHeap, mem.PagesFor(2<<20+fn.DirtyBytesPerRun))
		guest.heapAlloc = true
	}
	if inv.Response == nil {
		body := lang.Format(result)
		inv.ChargeOther("response", p.profile.NetOpBase+timePerKB(p.profile, len(body)))
		inv.Response = &Response{Status: 200, Body: body}
	}
	p.release(guest, opts.At)
	if opts.Parent == nil {
		observeInvocation(p.env.Metrics, "isolate", inv)
	}
	return inv, nil
}

func (p *isolatePlatform) acquire(fn *Function, mode StartMode, inv *Invocation, at time.Duration) (*isolateGuest, StartMode, error) {
	if mode != ModeCold {
		if guest, ok := p.pool.Acquire(fn.Name, at); ok {
			inv.ChargeStartup("isolate-resume", p.profile.WarmResume)
			return guest, ModeWarm, nil
		}
	}
	if mode == ModeWarm {
		return nil, mode, fmt.Errorf("isolate: no warm isolate for %q", fn.Name)
	}

	// "Cold" start: a new isolate in the already-running process. The
	// runtime binary is warm, so only isolate creation and module load
	// are paid — no process boot.
	inv.ChargeStartup("isolate-create", p.profile.ColdCreate)
	p.mu.Lock()
	p.nextID++
	id := fmt.Sprintf("isolate-%04d", p.nextID)
	p.mu.Unlock()

	space := p.env.Mem.NewSpace(id)
	space.MapRegion(p.processImage) // process sharing: the whole point
	space.AllocPrivate(mem.KindAnon, mem.PagesFor(p.profile.InfraBytes))

	rt := runtime.New(fn.Lang, inv.Clock)
	guest := &isolateGuest{id: id, fn: fn, rt: rt, space: space}
	// Workers have no real filesystem; give each isolate a private
	// scratch FS so file natives still behave.
	guest.binding = &NativeBinding{Profile: p.profile, FS: fs.NewMemFS(), Couch: p.env.Couch, Inv: inv}
	guest.binding.Install(rt)

	// The process is warm: mark the runtime booted without charging the
	// process start cost, then load the worker's module.
	rt.BootWarmProcess()
	loadMark := inv.Clock.Now()
	if err := rt.LoadModule(fn.Source); err != nil {
		space.Free()
		return nil, mode, err
	}
	inv.Breakdown.Add(trace.PhaseStartup, "module-load", inv.Clock.Since(loadMark))
	return guest, ModeCold, nil
}

func (p *isolatePlatform) release(g *isolateGuest, at time.Duration) {
	p.pool.Release(g.fn.Name, g, at)
}

// ExpireIdle implements Platform. Workers keeps isolates resident as
// long as the process lives (no keep-alive TTL), so this reaps nothing.
func (p *isolatePlatform) ExpireIdle(now time.Duration) int {
	return p.pool.ExpireIdle(now)
}

// WarmCount implements Platform: the idle pool size for a function.
func (p *isolatePlatform) WarmCount(name string) int {
	return p.pool.Count(name)
}

// Spaces implements the harness's MemoryReporter.
func (p *isolatePlatform) Spaces(name string) []*mem.Space {
	var out []*mem.Space
	for _, g := range p.pool.Guests(name) {
		out = append(out, g.space)
	}
	return out
}
