package platform

import (
	"strings"

	"repro/internal/metrics"
)

// Node-health values, the numeric contract of the node_state{node}
// gauge the cluster layer exports (cluster.Health mirrors these and
// delegates its String to HealthName, so the two can never drift).
const (
	HealthHealthy   = 0 // takes traffic normally
	HealthProbation = 1 // picked only when nothing healthy remains
	HealthDown      = 2 // takes no traffic until it recovers
)

// HealthName renders a node_state gauge value.
func HealthName(v int64) string {
	switch v {
	case HealthHealthy:
		return "healthy"
	case HealthProbation:
		return "probation"
	case HealthDown:
		return "down"
	default:
		return "unknown"
	}
}

// FleetHealth is the one shared derivation of fleet availability from
// node_state gauges — GET /healthz and the SLO watchdog's node-health
// probe both consume it, so an operator's dashboard and the alerting
// path can never disagree about what "down" means.
type FleetHealth struct {
	// Status is "ok" (every node up), "degraded" (some down), or
	// "down" (all down — the only state the gateway 503s on, since the
	// cluster absorbs anything less).
	Status string `json:"status"`
	// Nodes maps node name to its health name.
	Nodes map[string]string `json:"nodes"`
	// Total and Down count the fleet.
	Total int `json:"total"`
	Down  int `json:"down"`
}

// AllDown reports whether no node can take traffic.
func (f FleetHealth) AllDown() bool { return f.Total > 0 && f.Down == f.Total }

// DeriveFleetHealth folds a metrics snapshot's node_state gauges into
// the fleet availability view.
func DeriveFleetHealth(snap metrics.Snapshot) FleetHealth {
	f := FleetHealth{Status: "ok", Nodes: map[string]string{}}
	for _, g := range snap.Gauges {
		name, ok := strings.CutPrefix(g.Name, `node_state{node="`)
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, `"}`)
		if !ok {
			continue
		}
		f.Total++
		if g.Value == HealthDown {
			f.Down++
		}
		f.Nodes[name] = HealthName(g.Value)
	}
	switch {
	case f.AllDown():
		f.Status = "down"
	case f.Down > 0:
		f.Status = "degraded"
	}
	return f
}
