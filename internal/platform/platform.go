// Package platform implements the generic serverless-platform machinery
// shared by every system in the paper's evaluation: function registry,
// invocation accounting (latency breakdowns on a virtual clock), guest
// host-bridge natives (disk, network, database, chain invocation), and
// the three baseline platforms — OpenWhisk (containers + controller
// overhead), gVisor (runsc sandboxes), and Firecracker (microVMs with
// optional OS-level snapshots). The Fireworks platform itself lives in
// internal/core and implements the same Platform interface.
package platform

import (
	"fmt"
	"time"

	"repro/internal/couchdb"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/netsim"
	"repro/internal/runtime"
	"repro/internal/sandbox"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/vmm"
)

// Function is a deployable serverless function.
type Function struct {
	// Name uniquely identifies the function on the platform.
	Name string
	// Source is the FaaSLang source text.
	Source string
	// Lang selects the runtime personality (nodejs / python).
	Lang runtime.Lang
	// Entry is the entry-point function; "main" if empty.
	Entry string
	// DefaultParams is the example input used by install-time priming
	// (Fireworks' __fireworks_jit) and by docs.
	DefaultParams map[string]any
	// DirtyBytesPerRun models guest memory dirtied by one invocation
	// (heap churn, page cache) beyond the runtime's own heap model.
	DirtyBytesPerRun uint64
}

// EntryName returns the function's entry point.
func (f *Function) EntryName() string {
	if f.Entry == "" {
		return "main"
	}
	return f.Entry
}

// StartMode selects the invocation path.
type StartMode int

// Start modes.
const (
	// ModeAuto uses a warm sandbox when one is available.
	ModeAuto StartMode = iota
	// ModeCold forces a fresh sandbox.
	ModeCold
	// ModeWarm requires a warm sandbox and fails without one.
	ModeWarm
)

// String returns the mode name.
func (m StartMode) String() string {
	switch m {
	case ModeCold:
		return "cold"
	case ModeWarm:
		return "warm"
	default:
		return "auto"
	}
}

// Response is an HTTP-ish response produced by a guest via
// http_respond.
type Response struct {
	Status int
	Header string
	Body   string
}

// Invocation carries the accounting context of one end-to-end request.
// Chained function calls share the parent's clock and breakdown, so an
// application chain reports one combined latency exactly as the paper's
// Figure 9 does.
type Invocation struct {
	Function  string
	Clock     *vclock.Clock
	Breakdown *trace.Breakdown
	Response  *Response
	Result    lang.Value
	Logs      string
	SandboxID string
	// Mode records which start path actually ran (cold/warm).
	Mode StartMode
	// Trace is the invocation's handle into the event journal. Nil when
	// the deployment records no events; every emission site is nil-safe.
	Trace *events.Scope
}

// NewInvocation returns a fresh accounting context.
func NewInvocation(function string) *Invocation {
	return &Invocation{
		Function:  function,
		Clock:     vclock.New(),
		Breakdown: &trace.Breakdown{},
	}
}

// ChargeStartup advances the clock by d and attributes it to start-up.
func (inv *Invocation) ChargeStartup(label string, d time.Duration) {
	inv.Clock.Advance(d)
	inv.Breakdown.Add(trace.PhaseStartup, label, d)
}

// ChargeOther advances the clock by d and attributes it to "others"
// (network, disk, queueing) — the phase the paper separates from pure
// function execution.
func (inv *Invocation) ChargeOther(label string, d time.Duration) {
	inv.Clock.Advance(d)
	inv.Breakdown.Add(trace.PhaseOthers, label, d)
}

// Total returns the end-to-end latency recorded so far.
func (inv *Invocation) Total() time.Duration { return inv.Breakdown.Total() }

// StartSpan opens a paired span: one on the breakdown (per-invocation
// view) and one in the event journal (fleet-wide view), joined by
// stamping the journal SpanID onto the breakdown span. Close it with
// FinishSpan.
func (inv *Invocation) StartSpan(component, name string, p trace.Phase, attrs ...events.Attr) *trace.Span {
	s := inv.Breakdown.BeginSpan(name, p, inv.Clock.Now())
	inv.Trace.Begin(component, name, inv.Clock.Now(), attrs...)
	s.ID = uint64(inv.Trace.Current().Span)
	return s
}

// FinishSpan closes the innermost span pair opened by StartSpan.
func (inv *Invocation) FinishSpan(attrs ...events.Attr) {
	inv.Breakdown.EndSpan(inv.Clock.Now())
	inv.Trace.End(inv.Clock.Now(), attrs...)
}

// InvokeOptions tunes one Invoke call.
type InvokeOptions struct {
	Mode StartMode
	// Parent, when set, makes this invocation part of an ongoing one
	// (function chain): clock and breakdown are shared.
	Parent *Invocation
	// At positions the request on a workload timeline (trace replay).
	// Platforms with a keep-alive policy use it to expire idle warm
	// sandboxes; zero means untimed.
	At time.Duration
	// Trace, when set, is the request's already-open event scope (a
	// gateway or cluster layer opened the trace); the platform nests its
	// spans under it instead of opening a trace of its own.
	Trace *events.Scope
}

// Platform is the interface every evaluated system implements.
type Platform interface {
	// PlatformName identifies the platform in reports.
	PlatformName() string
	// Install deploys a function. The returned report describes what
	// installation cost (for Fireworks: annotate + boot + JIT +
	// snapshot).
	Install(fn Function) (*InstallReport, error)
	// Invoke runs a deployed function with the given parameters.
	Invoke(name string, params lang.Value, opts InvokeOptions) (*Invocation, error)
	// Remove undeploys a function and releases its sandboxes.
	Remove(name string) error
	// ExpireIdle reaps warm guests idle past the platform's keep-alive
	// at workload-timeline position now, returning how many were
	// terminated. Platforms without a keep-alive policy return 0.
	ExpireIdle(now time.Duration) int
	// WarmCount reports how many idle warm guests are pooled for a
	// function.
	WarmCount(name string) int
}

// InstallReport describes one function installation.
type InstallReport struct {
	Function string
	// Duration is the virtual install time (for Fireworks this is the
	// §5.1 "post-JIT snapshot creation time").
	Duration time.Duration
	// SnapshotBytes is the produced snapshot image size (0 when the
	// platform does not snapshot at install).
	SnapshotBytes uint64
	// JITCompiled lists functions force-compiled during install.
	JITCompiled []string
}

// Env bundles the shared host substrate every platform runs on: one
// physical host's memory, network, hypervisor, message bus, database,
// and snapshot storage.
type Env struct {
	Mem    *mem.Host
	Router *netsim.Router
	HV     *vmm.Hypervisor
	Bus    *msgbus.Broker
	Couch  *couchdb.Server
	Snaps  *snapshot.Store
	// RemoteSnaps, when non-nil, backs the local snapshot store with
	// remote object storage (§6): images evicted locally are re-fetched
	// over the network instead of reinstalled.
	RemoteSnaps *snapshot.Remote
	// Metrics aggregates counters, gauges, and histograms from every
	// component of this host (and, in a cluster, can be shared across
	// hosts for a fleet-wide view). Always non-nil from NewEnv.
	Metrics *metrics.Registry
	// Faults is the fault-injection plane armed on this host's
	// components (nil when the host runs fault-free).
	Faults *faults.Plane
	// Events is the host's causal event journal. Always non-nil from
	// NewEnv; in a cluster one shared journal spans every node.
	Events *events.Journal
}

// EnvConfig sizes an Env.
type EnvConfig struct {
	// MemBytes is host physical memory (default 128 GiB, the paper's
	// testbed).
	MemBytes uint64
	// Swappiness is the swap threshold fraction (default 0.6,
	// vm.swappiness=60 as in §5.4).
	Swappiness float64
	// SnapshotDiskBudget bounds snapshot storage (0 = unbounded).
	SnapshotDiskBudget uint64
	// RemoteSnapshotStorage enables the remote snapshot tier.
	RemoteSnapshotStorage bool
	// ExternalIPPool sizes the NAT pool (default 4096).
	ExternalIPPool int
	// Metrics, when non-nil, is the registry this host reports into —
	// a cluster passes one shared registry to every node so restores,
	// CoW faults, and queue dwell aggregate fleet-wide. Nil creates a
	// private registry for the host.
	Metrics *metrics.Registry
	// Faults, when non-nil, arms deterministic fault injection on the
	// host's hypervisor, message bus, network router, and remote
	// snapshot store (see internal/faults). A cluster passes one shared
	// plane to every node so the fleet-wide fault schedule is a single
	// seeded sequence.
	Faults *faults.Plane
	// Events, when non-nil, is the journal this host records into — a
	// cluster passes one shared journal to every node so a request's
	// trace survives failover hops. Nil creates a private journal.
	Events *events.Journal
}

// NewEnv creates a host environment.
func NewEnv(cfg EnvConfig) *Env {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 128 << 30
	}
	if cfg.Swappiness == 0 {
		cfg.Swappiness = 0.6
	}
	if cfg.ExternalIPPool == 0 {
		cfg.ExternalIPPool = 4096
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	journal := cfg.Events
	if journal == nil {
		journal = events.NewJournal(0)
	}
	host := mem.NewHost(cfg.MemBytes, cfg.Swappiness)
	router := netsim.NewRouter(cfg.ExternalIPPool)
	env := &Env{
		Mem:     host,
		Router:  router,
		HV:      vmm.New(host, router),
		Bus:     msgbus.NewBroker(),
		Couch:   couchdb.NewServer(),
		Snaps:   snapshot.NewStore(cfg.SnapshotDiskBudget),
		Metrics: reg,
		Events:  journal,
	}
	journal.Instrument(reg)
	host.Instrument(reg)
	env.HV.Instrument(reg)
	env.Bus.Instrument(reg)
	env.Snaps.Instrument(reg)
	if cfg.RemoteSnapshotStorage {
		env.RemoteSnaps = snapshot.NewRemote()
		env.RemoteSnaps.Instrument(reg)
	}
	if cfg.Faults != nil {
		env.Faults = cfg.Faults
		cfg.Faults.Instrument(reg)
		env.HV.AttachFaults(cfg.Faults)
		env.Bus.AttachFaults(cfg.Faults)
		env.Router.AttachFaults(cfg.Faults)
		if env.RemoteSnaps != nil {
			env.RemoteSnaps.AttachFaults(cfg.Faults)
		}
	}
	return env
}

// observeInvocation records a completed top-level invocation into the
// host registry: an invocation counter and the paper's three phase
// histograms plus total latency, all labeled by platform. Chained
// child invocations (opts.Parent != nil) share the parent's breakdown
// and must not be recorded again; callers skip them.
func observeInvocation(reg *metrics.Registry, platformName string, inv *Invocation) {
	if inv == nil {
		return
	}
	reg.Counter(metrics.Name("invoke_total", "platform", platformName)).Inc()
	reg.Counter(metrics.Name("invoke_mode_total", "mode", inv.Mode.String(), "platform", platformName)).Inc()
	tr, now := uint64(inv.Trace.TraceID()), inv.Clock.Now()
	reg.Histogram(metrics.Name("invoke_phase_duration", "phase", string(trace.PhaseStartup), "platform", platformName)).
		ObserveDurationExemplar(inv.Breakdown.Startup(), tr, now)
	reg.Histogram(metrics.Name("invoke_phase_duration", "phase", string(trace.PhaseExec), "platform", platformName)).
		ObserveDurationExemplar(inv.Breakdown.Exec(), tr, now)
	reg.Histogram(metrics.Name("invoke_phase_duration", "phase", string(trace.PhaseOthers), "platform", platformName)).
		ObserveDurationExemplar(inv.Breakdown.Others(), tr, now)
	reg.Histogram(metrics.Name("invoke_latency", "platform", platformName)).
		ObserveDurationExemplar(inv.Breakdown.Total(), tr, now)
}

// ObserveInvocation is observeInvocation for platform implementations
// living outside this package (internal/core).
func ObserveInvocation(reg *metrics.Registry, platformName string, inv *Invocation) {
	observeInvocation(reg, platformName, inv)
}

// observeInvokeError counts a failed invocation for a platform.
func observeInvokeError(reg *metrics.Registry, platformName string) {
	reg.Counter(metrics.Name("invoke_errors_total", "platform", platformName)).Inc()
}

// ObserveInvokeError is observeInvokeError for external platforms.
func ObserveInvokeError(reg *metrics.Registry, platformName string) {
	observeInvokeError(reg, platformName)
}

// vclockNew is an alias that keeps install paths readable.
func vclockNew() *vclock.Clock { return vclock.New() }

// timePerKB prices size-dependent network cost under a sandbox profile.
func timePerKB(p sandbox.Profile, bytes int) time.Duration {
	return time.Duration((bytes+1023)/1024) * p.NetPerKB
}

// paramsValue converts a Function's default params into a FaaSLang map.
func paramsValue(params map[string]any) (lang.Value, error) {
	if params == nil {
		return lang.NewMap(), nil
	}
	goMap := make(map[string]any, len(params))
	for k, v := range params {
		goMap[k] = v
	}
	return runtime.FromGo(goMap)
}

// ParamsValue converts plain Go data into the FaaSLang params map for
// Invoke (exported for harness and examples).
func ParamsValue(params map[string]any) (lang.Value, error) { return paramsValue(params) }

// MustParams is ParamsValue for static inputs in tests and examples.
func MustParams(params map[string]any) lang.Value {
	v, err := paramsValue(params)
	if err != nil {
		panic(fmt.Sprintf("platform: bad params: %v", err))
	}
	return v
}

// Validate compiles and sanity-checks a function definition at
// registration time; every platform (including Fireworks in
// internal/core) calls it from Install.
func Validate(fn *Function) error { return validate(fn) }

// PerKB prices size-dependent network cost under a sandbox profile
// (exported for platform implementations outside this package).
func PerKB(p sandbox.Profile, bytes int) time.Duration { return timePerKB(p, bytes) }

// validate compiles and sanity-checks a function definition at
// registration time; every platform calls it from Install.
func validate(fn *Function) error {
	if fn.Name == "" {
		return fmt.Errorf("platform: function needs a name")
	}
	if fn.Lang != runtime.LangNode && fn.Lang != runtime.LangPython {
		return fmt.Errorf("platform: function %q has unknown language %q", fn.Name, fn.Lang)
	}
	prog, err := lang.Parse(fn.Source)
	if err != nil {
		return fmt.Errorf("platform: function %q: %w", fn.Name, err)
	}
	entry := prog.Function(fn.EntryName())
	if entry == nil {
		return fmt.Errorf("platform: function %q lacks entry %q", fn.Name, fn.EntryName())
	}
	if len(entry.Params) != 1 {
		return fmt.Errorf("platform: function %q entry must take one params argument", fn.Name)
	}
	return nil
}
