package platform

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/lang"
	"repro/internal/lifecycle"
	"repro/internal/mem"
	"repro/internal/runtime"
	"repro/internal/sandbox"
	"repro/internal/trace"
	"repro/internal/vmm"
)

// FirecrackerMode selects the baseline's snapshot behaviour for the
// §5.5 factor analysis.
type FirecrackerMode int

// Firecracker baseline modes.
const (
	// FCNoSnapshot boots a fresh microVM per cold start (the paper's
	// "original version of Firecracker as a baseline, which does not
	// use a snapshot").
	FCNoSnapshot FirecrackerMode = iota
	// FCOSSnapshot restores a VM-level snapshot taken right after the
	// guest OS booted; the runtime still boots and the function still
	// loads (and JITs) after restore — the "+VM-level OS snapshot"
	// factor.
	FCOSSnapshot
)

// String names the mode.
func (m FirecrackerMode) String() string {
	if m == FCOSSnapshot {
		return "os-snapshot"
	}
	return "no-snapshot"
}

// firecrackerPlatform is the Firecracker baseline: microVM sandboxes,
// one function per VM, warm pool by pausing VMs. It cannot run function
// chains (§5.3).
type firecrackerPlatform struct {
	env     *Env
	mode    FirecrackerMode
	profile sandbox.Profile
	// pool holds idle paused microVMs awaiting a warm resume.
	pool *lifecycle.Pool[*fcGuest]

	mu     sync.Mutex
	fns    map[string]*Function
	osSnap map[string]*vmm.Snapshot
}

type fcGuest struct {
	vm        *vmm.MicroVM
	fn        *Function
	rt        *runtime.Runtime
	binding   *NativeBinding
	heapAlloc bool
}

// NewFirecracker returns the Firecracker baseline in the given mode.
func NewFirecracker(env *Env, mode FirecrackerMode) Platform {
	p := &firecrackerPlatform{
		env:     env,
		mode:    mode,
		profile: sandbox.Profiles(sandbox.ClassFirecracker),
		fns:     make(map[string]*Function),
		osSnap:  make(map[string]*vmm.Snapshot),
	}
	p.pool = lifecycle.NewPool(lifecycle.PoolConfig[*fcGuest]{
		OnEvict: func(g *fcGuest) { _ = g.vm.Stop() },
	})
	p.pool.Instrument(env.Metrics, p.PlatformName())
	return p
}

// PlatformName implements Platform.
func (p *firecrackerPlatform) PlatformName() string {
	if p.mode == FCOSSnapshot {
		return "firecracker+os-snapshot"
	}
	return "firecracker"
}

// Install implements Platform. In OS-snapshot mode installation boots a
// VM once and captures the post-OS-boot image that invocations restore.
func (p *firecrackerPlatform) Install(fn Function) (*InstallReport, error) {
	if err := validate(&fn); err != nil {
		return nil, err
	}
	report := &InstallReport{Function: fn.Name}
	if p.mode == FCOSSnapshot {
		clock := vclockNew()
		vm, err := p.env.HV.CreateVM(vmm.DefaultConfig(), clock)
		if err != nil {
			return nil, err
		}
		if err := vm.BootKernel(clock); err != nil {
			return nil, err
		}
		snap, err := p.env.HV.TakeSnapshot(vm, vmm.SnapOSOnly,
			[]vmm.RegionSpec{{Kind: mem.KindKernel, Bytes: vmm.CostKernelBytes}},
			osSnapshotWorkingSet, nil, clock)
		if err != nil {
			return nil, err
		}
		if err := vm.Stop(); err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.osSnap[fn.Name] = snap
		p.mu.Unlock()
		report.Duration = clock.Now()
		report.SnapshotBytes = snap.TotalBytes()
	}
	p.mu.Lock()
	p.fns[fn.Name] = &fn
	p.mu.Unlock()
	return report, nil
}

// osSnapshotWorkingSet is the post-boot resident set a restored OS
// snapshot faults in before the runtime can start.
const osSnapshotWorkingSet = 24 << 20

// Remove implements Platform.
func (p *firecrackerPlatform) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.fns[name]; !ok {
		return fmt.Errorf("%s: no function %q", p.PlatformName(), name)
	}
	for _, g := range p.pool.DrainKey(name) {
		if err := g.vm.Stop(); err != nil {
			return err
		}
	}
	delete(p.osSnap, name)
	delete(p.fns, name)
	return nil
}

// Invoke implements Platform.
func (p *firecrackerPlatform) Invoke(name string, params lang.Value, opts InvokeOptions) (*Invocation, error) {
	p.mu.Lock()
	fn, ok := p.fns[name]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%s: no function %q", p.PlatformName(), name)
	}
	inv := opts.Parent
	if inv == nil {
		inv = NewInvocation(name)
	}
	paramBytes := encodedSize(params)
	inv.ChargeOther("param-deliver", p.profile.NetOpBase+timePerKB(p.profile, paramBytes))

	guest, mode, err := p.acquire(fn, opts.Mode, inv, opts.At)
	if err != nil {
		observeInvokeError(p.env.Metrics, p.PlatformName())
		return nil, err
	}
	inv.Mode = mode
	inv.SandboxID = guest.vm.ID

	guest.rt.SetClock(inv.Clock)
	guest.binding.Rebind(inv)

	attributedBefore := inv.Breakdown.Total()
	mark := inv.Clock.Now()
	result, err := guest.rt.Call(fn.EntryName(), params)
	span := inv.Clock.Since(mark)
	inv.Breakdown.Add(trace.PhaseExec, "exec", span-(inv.Breakdown.Total()-attributedBefore))
	if err != nil {
		p.release(guest, opts.At)
		observeInvokeError(p.env.Metrics, p.PlatformName())
		return inv, fmt.Errorf("%s: %s: %w", p.PlatformName(), name, err)
	}
	inv.Result = result
	inv.Logs += guest.rt.Stdout.String()
	guest.rt.Stdout.Reset()

	if !guest.heapAlloc {
		guest.vm.DirtyDuringExecution(guest.rt.Model.HeapPerInvokeBytes + fn.DirtyBytesPerRun)
		guest.heapAlloc = true
	}

	if inv.Response == nil {
		body := lang.Format(result)
		inv.ChargeOther("response", p.profile.NetOpBase+timePerKB(p.profile, len(body)))
		inv.Response = &Response{Status: 200, Body: body}
	}
	p.release(guest, opts.At)
	if opts.Parent == nil {
		observeInvocation(p.env.Metrics, p.PlatformName(), inv)
	}
	return inv, nil
}

func (p *firecrackerPlatform) acquire(fn *Function, mode StartMode, inv *Invocation, at time.Duration) (*fcGuest, StartMode, error) {
	if mode != ModeCold {
		if guest, ok := p.pool.Acquire(fn.Name, at); ok {
			warmMark := inv.Clock.Now()
			if err := guest.vm.ResumeWarm(inv.Clock); err != nil {
				_ = guest.vm.Stop()
				return nil, mode, err
			}
			inv.Breakdown.Add(trace.PhaseStartup, "vm-resume", inv.Clock.Since(warmMark))
			return guest, ModeWarm, nil
		}
	}
	if mode == ModeWarm {
		return nil, mode, fmt.Errorf("%s: no warm microVM for %q", p.PlatformName(), fn.Name)
	}

	startMark := inv.Clock.Now()
	var vm_ *vmm.MicroVM
	var err error
	switch p.mode {
	case FCOSSnapshot:
		p.mu.Lock()
		snap := p.osSnap[fn.Name]
		p.mu.Unlock()
		if snap == nil {
			return nil, mode, fmt.Errorf("%s: no OS snapshot for %q", p.PlatformName(), fn.Name)
		}
		vm_, err = p.env.HV.Restore(snap, vmm.RestoreOptions{}, inv.Clock)
		if err != nil {
			return nil, mode, err
		}
		if err := p.env.HV.SetupNetwork(vm_, snap.GuestIP, inv.Clock); err != nil {
			return nil, mode, err
		}
	default:
		vm_, err = p.env.HV.CreateVM(vmm.DefaultConfig(), inv.Clock)
		if err != nil {
			return nil, mode, err
		}
		if err := vm_.BootKernel(inv.Clock); err != nil {
			return nil, mode, err
		}
		if err := p.env.HV.SetupNetwork(vm_, "192.168.0.2", inv.Clock); err != nil {
			return nil, mode, err
		}
	}

	rt := runtime.New(fn.Lang, inv.Clock)
	guest := &fcGuest{vm: vm_, fn: fn, rt: rt}
	guest.binding = &NativeBinding{
		Profile: p.profile,
		FS:      vm_.FS,
		Couch:   p.env.Couch,
		Inv:     inv,
	}
	guest.binding.Install(rt)

	rt.Boot()
	if err := rt.LoadModule(fn.Source); err != nil {
		_ = vm_.Stop()
		return nil, mode, err
	}
	if err := vm_.AllocGuest(mem.KindRuntime, rt.Model.RuntimeImageBytes); err != nil {
		return nil, mode, err
	}
	if err := vm_.AllocGuest(mem.KindLibrary, rt.Model.LibraryBytes); err != nil {
		return nil, mode, err
	}
	inv.Breakdown.Add(trace.PhaseStartup, "vm-boot+runtime", inv.Clock.Since(startMark))
	return guest, ModeCold, nil
}

// Spaces returns the address spaces of the function's live (pooled)
// microVMs, for the memory experiments (implements the harness's
// MemoryReporter).
func (p *firecrackerPlatform) Spaces(name string) []*mem.Space {
	var out []*mem.Space
	for _, g := range p.pool.Guests(name) {
		out = append(out, g.vm.Space())
	}
	return out
}

func (p *firecrackerPlatform) release(g *fcGuest, at time.Duration) {
	if err := g.vm.Pause(); err != nil {
		// A VM that cannot pause is broken; drop it.
		_ = g.vm.Stop()
		return
	}
	p.pool.Release(g.fn.Name, g, at)
}

// ExpireIdle implements Platform. The Firecracker baseline keeps warm
// VMs indefinitely (no keep-alive TTL), so the reaper is a no-op.
func (p *firecrackerPlatform) ExpireIdle(now time.Duration) int {
	return p.pool.ExpireIdle(now)
}

// WarmCount implements Platform: the idle pool size for a function.
func (p *firecrackerPlatform) WarmCount(name string) int {
	return p.pool.Count(name)
}
