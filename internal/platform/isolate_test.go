package platform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/runtime"
)

func TestIsolateBasicInvoke(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewIsolate(env)
	if p.PlatformName() != "isolate" {
		t.Fatal("name")
	}
	if _, err := p.Install(factFn("fact")); err != nil {
		t.Fatal(err)
	}
	inv, err := p.Invoke("fact", MustParams(map[string]any{"n": 10}), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Result != int64(3628800) {
		t.Fatalf("result = %v", inv.Result)
	}
	// "Cold" start in an isolate is milliseconds — no process boot, no
	// container create, no VM.
	if su := inv.Breakdown.Startup(); su > 20*time.Millisecond {
		t.Fatalf("isolate cold startup = %v, want ~ms", su)
	}
	warm, err := p.Invoke("fact", MustParams(map[string]any{"n": 10}), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Mode != ModeWarm || warm.Breakdown.Startup() > 2*time.Millisecond {
		t.Fatalf("warm: %v %v", warm.Mode, warm.Breakdown.Startup())
	}
}

func TestIsolateRejectsPython(t *testing.T) {
	p := NewIsolate(NewEnv(EnvConfig{}))
	fn := factFn("py")
	fn.Lang = runtime.LangPython
	if _, err := p.Install(fn); err == nil || !strings.Contains(err.Error(), "only nodejs") {
		t.Fatalf("err = %v", err)
	}
}

func TestIsolateProcessSharing(t *testing.T) {
	// Table 1's "High (process sharing)" memory efficiency: N isolates
	// share the runtime process image; per-isolate PSS is far below a
	// container's footprint.
	env := NewEnv(EnvConfig{})
	p := NewIsolate(env).(*isolatePlatform)
	p.Install(factFn("fact"))
	params := MustParams(map[string]any{"n": 5})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := p.Invoke("fact", params, InvokeOptions{Mode: ModeCold}); err != nil {
			t.Fatal(err)
		}
	}
	spaces := p.Spaces("fact")
	if len(spaces) != n {
		t.Fatalf("isolates = %d", len(spaces))
	}
	var pss float64
	for _, s := range spaces {
		pss += s.PSS()
	}
	perIsolate := pss / n
	// Runtime image+libs is 110 MiB; shared across 20 isolates each
	// should sit at ~5.5 MiB share + a few MiB private.
	if perIsolate > 20<<20 {
		t.Fatalf("per-isolate PSS = %.1f MiB; process sharing broken", perIsolate/(1<<20))
	}
	// A container running the same function holds the full image
	// privately.
	ow := NewOpenWhisk(NewEnv(EnvConfig{})).(*containerPlatform)
	ow.Install(factFn("fact"))
	ow.Invoke("fact", params, InvokeOptions{})
	owPSS := ow.Spaces("fact")[0].PSS()
	if owPSS < 5*perIsolate {
		t.Fatalf("container PSS %.1f MiB not far above isolate %.1f MiB",
			owPSS/(1<<20), perIsolate/(1<<20))
	}
}

func TestIsolateRemoveFreesMemory(t *testing.T) {
	env := NewEnv(EnvConfig{})
	p := NewIsolate(env)
	p.Install(factFn("fact"))
	p.Invoke("fact", MustParams(nil), InvokeOptions{})
	if err := p.Remove("fact"); err != nil {
		t.Fatal(err)
	}
	if used := env.Mem.Used(); used != 0 {
		t.Fatalf("%d bytes held after remove", used)
	}
	if err := p.Remove("fact"); err == nil {
		t.Fatal("double remove succeeded")
	}
	_ = mem.PageSize
}
