package snapshot

import (
	"errors"
	"fmt"
	"testing"

	"sync"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/vclock"
	"repro/internal/vmm"
)

// makeSnap builds a snapshot of roughly size bytes.
func makeSnap(t *testing.T, hv *vmm.Hypervisor, bytes uint64) *vmm.Snapshot {
	t.Helper()
	clock := vclock.New()
	v, err := hv.CreateVM(vmm.DefaultConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.BootKernel(clock); err != nil {
		t.Fatal(err)
	}
	snap, err := hv.TakeSnapshot(v, vmm.SnapPostJIT,
		[]vmm.RegionSpec{{Kind: mem.KindHeap, Bytes: bytes}}, bytes/4, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Stop(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func newHV() *vmm.Hypervisor {
	return vmm.New(mem.NewHost(64<<30, 0.6), netsim.NewRouter(64))
}

func TestPutGet(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	snap := makeSnap(t, hv, 10<<20)
	if err := s.Put("fn", snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("fn")
	if err != nil {
		t.Fatal(err)
	}
	if got != snap {
		t.Fatal("wrong snapshot returned")
	}
	if !s.Has("fn") || s.Has("other") {
		t.Fatal("Has wrong")
	}
	if s.UsedBytes() != snap.TotalBytes() {
		t.Fatalf("UsedBytes = %d", s.UsedBytes())
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore(0)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplaceSameName(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	a := makeSnap(t, hv, 10<<20)
	b := makeSnap(t, hv, 20<<20)
	s.Put("fn", a)
	s.Put("fn", b)
	got, _ := s.Get("fn")
	if got != b {
		t.Fatal("replace did not take")
	}
	if s.UsedBytes() != b.TotalBytes() {
		t.Fatalf("UsedBytes = %d after replace", s.UsedBytes())
	}
}

func TestLRUEviction(t *testing.T) {
	hv := newHV()
	s := NewStore(100 << 20)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("fn%d", i), makeSnap(t, hv, 40<<20)); err != nil {
			t.Fatal(err)
		}
	}
	// Budget holds 2 x 40 MiB; fn0 (oldest) must be gone.
	if s.Has("fn0") {
		t.Fatal("fn0 survived")
	}
	if !s.Has("fn1") || !s.Has("fn2") {
		t.Fatal("newer snapshots evicted")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d", s.Evictions())
	}
	// Touch fn1 so fn2 becomes the LRU victim.
	if _, err := s.Get("fn1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn3", makeSnap(t, hv, 40<<20)); err != nil {
		t.Fatal(err)
	}
	if s.Has("fn2") || !s.Has("fn1") || !s.Has("fn3") {
		t.Fatalf("LRU order wrong: %v", s.Names())
	}
}

func TestTooLarge(t *testing.T) {
	hv := newHV()
	s := NewStore(10 << 20)
	err := s.Put("big", makeSnap(t, hv, 50<<20))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	hv := newHV()
	s := NewStore(100 << 20)
	s.Put("fn0", makeSnap(t, hv, 40<<20))
	s.Put("fn1", makeSnap(t, hv, 40<<20))
	if err := s.Pin("fn0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin missing: %v", err)
	}
	// fn0 is pinned, so fn1 must be the victim despite being newer.
	if err := s.Put("fn2", makeSnap(t, hv, 40<<20)); err != nil {
		t.Fatal(err)
	}
	if !s.Has("fn0") || s.Has("fn1") {
		t.Fatalf("pin ignored: %v", s.Names())
	}
	// All pinned -> insertion fails.
	if err := s.Pin("fn2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn3", makeSnap(t, hv, 40<<20)); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("err = %v", err)
	}
	s.Unpin("fn2")
	if err := s.Put("fn3", makeSnap(t, hv, 40<<20)); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

// makeChunkedSnap builds a snapshot whose regions carry explicit
// content classes, so its chunks dedup against other snapshots sharing
// a class.
func makeChunkedSnap(t *testing.T, hv *vmm.Hypervisor, regions []vmm.RegionSpec) *vmm.Snapshot {
	t.Helper()
	clock := vclock.New()
	v, err := hv.CreateVM(vmm.DefaultConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.BootKernel(clock); err != nil {
		t.Fatal(err)
	}
	snap, err := hv.TakeSnapshot(v, vmm.SnapPostJIT, regions, 8<<20, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Stop(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestChunkDedupAccounting(t *testing.T) {
	hv := newHV()
	reg := metrics.NewRegistry()
	s := NewStore(0)
	s.Instrument(reg)
	base := vmm.RegionSpec{Kind: mem.KindRuntime, Bytes: 64 << 20, Content: "base:runtime:test"}
	a := makeChunkedSnap(t, hv, []vmm.RegionSpec{
		{Kind: mem.KindHeap, Bytes: 8 << 20, Content: "fn:a"}, base})
	b := makeChunkedSnap(t, hv, []vmm.RegionSpec{
		{Kind: mem.KindHeap, Bytes: 8 << 20, Content: "fn:b"}, base})
	if err := s.Put("a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", b); err != nil {
		t.Fatal(err)
	}
	if got, want := s.LogicalBytes(), a.TotalBytes()+b.TotalBytes(); got != want {
		t.Fatalf("LogicalBytes = %d, want %d", got, want)
	}
	// b's base chunks dedup against a's: only its 8 MiB heap is new.
	if got, want := s.UsedBytes(), a.TotalBytes()+8<<20; got != want {
		t.Fatalf("UsedBytes = %d, want %d", got, want)
	}
	if reg.Counter("snapshot_chunks_deduped_total").Value() == 0 {
		t.Fatal("no chunks counted as deduped")
	}
	// Removing a keeps the shared base chunks alive for b.
	s.Remove("a")
	if got, want := s.UsedBytes(), b.TotalBytes(); got != want {
		t.Fatalf("UsedBytes after Remove = %d, want %d", got, want)
	}
}

func TestContentKeyChangeCountsInvalidation(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	a := makeSnap(t, hv, 8<<20)
	a.ContentKey = "fn_aaa"
	if err := s.Put("fn", a); err != nil {
		t.Fatal(err)
	}
	b := makeSnap(t, hv, 8<<20)
	b.ContentKey = "fn_aaa"
	// Same code hash: a plain replace, not an invalidation.
	if err := s.Put("fn", b); err != nil {
		t.Fatal(err)
	}
	if s.Invalidations() != 0 {
		t.Fatalf("invalidations = %d after same-key replace", s.Invalidations())
	}
	c := makeSnap(t, hv, 8<<20)
	c.ContentKey = "fn_bbb"
	if err := s.Put("fn", c); err != nil {
		t.Fatal(err)
	}
	if s.Invalidations() != 1 {
		t.Fatalf("invalidations = %d after code-hash change", s.Invalidations())
	}
}

func TestBaseWithResidentDeltaNeverEvicted(t *testing.T) {
	hv := newHV()
	baseSpec := vmm.RegionSpec{Kind: mem.KindRuntime, Bytes: 64 << 20, Content: "base:runtime:test"}
	base := makeChunkedSnap(t, hv, []vmm.RegionSpec{baseSpec})
	mkDelta := func(name string) *vmm.Snapshot {
		snap := makeChunkedSnap(t, hv, []vmm.RegionSpec{
			{Kind: mem.KindHeap, Bytes: 16 << 20, Content: "fn:" + name}, baseSpec})
		snap.BaseKey = "base"
		return snap
	}
	// Budget fits the 64 MiB base plus one 16 MiB delta, never two.
	s := NewStore(64<<20 + 24<<20)
	if err := s.Put("base", base); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn-a", mkDelta("a")); err != nil {
		t.Fatal(err)
	}
	// The second delta must evict fn-a — never the base, even though the
	// base is the LRU entry.
	if err := s.Put("fn-b", mkDelta("b")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("base") {
		t.Fatal("base evicted while a delta depended on it")
	}
	if s.Has("fn-a") || !s.Has("fn-b") {
		t.Fatalf("wrong victim: %v", s.Names())
	}
	// Pin the only evictable entry: the base is dependency-protected and
	// fn-b is pinned, so Put must fail ErrAllPinned and roll back its
	// provisional chunk refs.
	if err := s.Pin("fn-b"); err != nil {
		t.Fatal(err)
	}
	used := s.UsedBytes()
	if err := s.Put("fn-c", mkDelta("c")); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("err = %v, want ErrAllPinned", err)
	}
	if s.UsedBytes() != used {
		t.Fatalf("failed Put leaked chunk refs: used %d, want %d", s.UsedBytes(), used)
	}
	// Dropping the last delta makes the base evictable again.
	s.Unpin("fn-b")
	s.Remove("fn-b")
	if err := s.Put("fn-c", mkDelta("c")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStoreAccess(t *testing.T) {
	hv := newHV()
	const goroutines, perG = 4, 6
	snaps := make([][]*vmm.Snapshot, goroutines)
	for g := range snaps {
		snaps[g] = make([]*vmm.Snapshot, perG)
		for i := range snaps[g] {
			snaps[g][i] = makeSnap(t, hv, 20<<20)
		}
	}
	s := NewStore(200 << 20)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, snap := range snaps[g] {
				name := fmt.Sprintf("g%d-fn%d", g, i)
				if err := s.Put(name, snap); err != nil {
					continue
				}
				s.Get(name)
				if s.Pin(name) == nil {
					s.Unpin(name)
				}
				s.UsedBytes()
				s.Names()
			}
		}(g)
	}
	wg.Wait()
}

func TestRemove(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	s.Put("fn", makeSnap(t, hv, 10<<20))
	s.Remove("fn")
	if s.Has("fn") || s.UsedBytes() != 0 {
		t.Fatal("remove incomplete")
	}
	s.Remove("fn") // idempotent
}

func TestNamesSorted(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.Put(n, makeSnap(t, hv, 1<<20))
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	if s.Budget() != 0 {
		t.Fatalf("budget = %d", s.Budget())
	}
}
