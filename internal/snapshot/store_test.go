package snapshot

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/vclock"
	"repro/internal/vmm"
)

// makeSnap builds a snapshot of roughly size bytes.
func makeSnap(t *testing.T, hv *vmm.Hypervisor, bytes uint64) *vmm.Snapshot {
	t.Helper()
	clock := vclock.New()
	v, err := hv.CreateVM(vmm.DefaultConfig(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.BootKernel(clock); err != nil {
		t.Fatal(err)
	}
	snap, err := hv.TakeSnapshot(v, vmm.SnapPostJIT,
		[]vmm.RegionSpec{{Kind: mem.KindHeap, Bytes: bytes}}, bytes/4, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Stop(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func newHV() *vmm.Hypervisor {
	return vmm.New(mem.NewHost(64<<30, 0.6), netsim.NewRouter(64))
}

func TestPutGet(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	snap := makeSnap(t, hv, 10<<20)
	if err := s.Put("fn", snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("fn")
	if err != nil {
		t.Fatal(err)
	}
	if got != snap {
		t.Fatal("wrong snapshot returned")
	}
	if !s.Has("fn") || s.Has("other") {
		t.Fatal("Has wrong")
	}
	if s.UsedBytes() != snap.TotalBytes() {
		t.Fatalf("UsedBytes = %d", s.UsedBytes())
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore(0)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplaceSameName(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	a := makeSnap(t, hv, 10<<20)
	b := makeSnap(t, hv, 20<<20)
	s.Put("fn", a)
	s.Put("fn", b)
	got, _ := s.Get("fn")
	if got != b {
		t.Fatal("replace did not take")
	}
	if s.UsedBytes() != b.TotalBytes() {
		t.Fatalf("UsedBytes = %d after replace", s.UsedBytes())
	}
}

func TestLRUEviction(t *testing.T) {
	hv := newHV()
	s := NewStore(100 << 20)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("fn%d", i), makeSnap(t, hv, 40<<20)); err != nil {
			t.Fatal(err)
		}
	}
	// Budget holds 2 x 40 MiB; fn0 (oldest) must be gone.
	if s.Has("fn0") {
		t.Fatal("fn0 survived")
	}
	if !s.Has("fn1") || !s.Has("fn2") {
		t.Fatal("newer snapshots evicted")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d", s.Evictions())
	}
	// Touch fn1 so fn2 becomes the LRU victim.
	if _, err := s.Get("fn1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn3", makeSnap(t, hv, 40<<20)); err != nil {
		t.Fatal(err)
	}
	if s.Has("fn2") || !s.Has("fn1") || !s.Has("fn3") {
		t.Fatalf("LRU order wrong: %v", s.Names())
	}
}

func TestTooLarge(t *testing.T) {
	hv := newHV()
	s := NewStore(10 << 20)
	err := s.Put("big", makeSnap(t, hv, 50<<20))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	hv := newHV()
	s := NewStore(100 << 20)
	s.Put("fn0", makeSnap(t, hv, 40<<20))
	s.Put("fn1", makeSnap(t, hv, 40<<20))
	if err := s.Pin("fn0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin missing: %v", err)
	}
	// fn0 is pinned, so fn1 must be the victim despite being newer.
	if err := s.Put("fn2", makeSnap(t, hv, 40<<20)); err != nil {
		t.Fatal(err)
	}
	if !s.Has("fn0") || s.Has("fn1") {
		t.Fatalf("pin ignored: %v", s.Names())
	}
	// All pinned -> insertion fails.
	if err := s.Pin("fn2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fn3", makeSnap(t, hv, 40<<20)); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("err = %v", err)
	}
	s.Unpin("fn2")
	if err := s.Put("fn3", makeSnap(t, hv, 40<<20)); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestRemove(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	s.Put("fn", makeSnap(t, hv, 10<<20))
	s.Remove("fn")
	if s.Has("fn") || s.UsedBytes() != 0 {
		t.Fatal("remove incomplete")
	}
	s.Remove("fn") // idempotent
}

func TestNamesSorted(t *testing.T) {
	hv := newHV()
	s := NewStore(0)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.Put(n, makeSnap(t, hv, 1<<20))
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	if s.Budget() != 0 {
		t.Fatalf("budget = %d", s.Budget())
	}
}
