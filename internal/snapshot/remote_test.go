package snapshot

import (
	"errors"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestRemoteUploadFetch(t *testing.T) {
	hv := newHV()
	r := NewRemote()
	snap := makeSnap(t, hv, 100<<20)

	up := vclock.New()
	r.Upload("fn", snap, up)
	if up.Now() == 0 {
		t.Fatal("upload free of charge")
	}
	if !r.Has("fn") || r.Uploads() != 1 {
		t.Fatal("upload not recorded")
	}

	down := vclock.New()
	got, err := r.Fetch("fn", down)
	if err != nil {
		t.Fatal(err)
	}
	if got != snap {
		t.Fatal("wrong image")
	}
	if r.Fetches() != 1 {
		t.Fatalf("fetches = %d", r.Fetches())
	}
	// 100 MiB at ~1.25 GB/s plus base: tens of milliseconds — far
	// cheaper than a reinstall, pricier than a warm local resume.
	if down.Now() < 50*time.Millisecond || down.Now() > 200*time.Millisecond {
		t.Fatalf("fetch cost = %v", down.Now())
	}
}

func TestRemoteFetchCostScalesWithSize(t *testing.T) {
	hv := newHV()
	r := NewRemote()
	r.Upload("small", makeSnap(t, hv, 10<<20), vclock.New())
	r.Upload("big", makeSnap(t, hv, 200<<20), vclock.New())
	cs, cb := vclock.New(), vclock.New()
	if _, err := r.Fetch("small", cs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch("big", cb); err != nil {
		t.Fatal(err)
	}
	if cb.Now() <= cs.Now() {
		t.Fatalf("big fetch %v not slower than small %v", cb.Now(), cs.Now())
	}
}

func TestRemoteMissAndDelete(t *testing.T) {
	r := NewRemote()
	if _, err := r.Fetch("ghost", vclock.New()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	hv := newHV()
	r.Upload("fn", makeSnap(t, hv, 1<<20), vclock.New())
	r.Delete("fn")
	if r.Has("fn") {
		t.Fatal("delete ineffective")
	}
	r.Delete("fn") // idempotent
}
