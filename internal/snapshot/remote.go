package snapshot

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/vclock"
	"repro/internal/vmm"
)

// Remote is an unbounded remote object store for snapshot images — the
// §6 mitigation the paper points to ("previous works using a
// snapshot-based approach leverage remote storage"): the host keeps a
// bounded local cache (Store) and falls back to fetching the image over
// the network instead of re-running the whole install phase.
//
// Like the local store, the remote is content-addressed: objects are
// manifests over a shared chunk pool. An upload moves only chunks the
// remote pool lacks (re-uploading existing content is a metadata-only
// write), and a fetch against a local store moves only chunks missing
// from the local pool — so pulling a post-JIT image whose base-runtime
// chunks are already resident pays for the function's few-MiB delta,
// not the whole ~240 MiB image.
//
// Transfer cost models a 10 Gbps storage network: a fixed request
// latency plus a per-byte term over the bytes actually moved, so a full
// ~240 MiB image costs ~200 ms — two orders of magnitude cheaper than a
// reinstall (~5 s) — and a delta fetch is an order cheaper again.
type Remote struct {
	mu      sync.Mutex
	objects map[string]*vmm.Snapshot
	pool    map[uint64]uint64 // chunk ID -> bytes resident remotely
	fetches int
	uploads int

	// Observability (nil-safe; see Instrument).
	fetchCtr     *metrics.Counter
	uploadCtr    *metrics.Counter
	chunksFetch  *metrics.Counter
	xferBytes    *metrics.Histogram
	deltaBytes   *metrics.Histogram
	objectsGauge *metrics.Gauge

	// injector, when attached, injects failures at the
	// snapshot.remote.fetch site (nil-safe).
	injector *faults.Plane
}

// transferBuckets spans the image sizes the platform moves: a few MiB
// of runtime state up to multi-hundred-MiB post-JIT images.
func transferBuckets() []float64 {
	return []float64{
		1 << 20,   // 1 MiB
		16 << 20,  // 16 MiB
		64 << 20,  // 64 MiB
		128 << 20, // 128 MiB
		256 << 20, // 256 MiB
		512 << 20, // 512 MiB
		1 << 30,   // 1 GiB
	}
}

// Instrument attaches the remote store to a metrics registry:
// fetch/upload counters, per-chunk fetch traffic, a transfer-size
// histogram over the bytes actually moved each direction, the per-fetch
// delta size, and the resident object count.
func (r *Remote) Instrument(reg *metrics.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fetchCtr = reg.Counter("snapshot_remote_fetches_total")
	r.uploadCtr = reg.Counter("snapshot_remote_uploads_total")
	r.chunksFetch = reg.Counter("snapshot_chunks_fetched_total")
	r.xferBytes = reg.HistogramWith("snapshot_remote_transfer_bytes", "bytes", transferBuckets())
	r.deltaBytes = reg.HistogramWith("snapshot_delta_bytes", "bytes", transferBuckets())
	r.objectsGauge = reg.Gauge("snapshot_remote_objects")
}

// AttachFaults arms the remote store's fault-injection site.
func (r *Remote) AttachFaults(p *faults.Plane) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.injector = p
}

// Remote transfer cost constants (10 Gbps effective ≈ 1.25 GB/s).
const (
	CostRemoteFetchBase = 5 * time.Millisecond
	CostRemotePerMiB    = 840 * time.Microsecond
	// Uploads happen on the install path (already seconds long); the
	// same transfer rate applies.
	CostRemoteUploadBase = 5 * time.Millisecond
)

// NewRemote returns an empty remote store.
func NewRemote() *Remote {
	return &Remote{
		objects: make(map[string]*vmm.Snapshot),
		pool:    make(map[uint64]uint64),
	}
}

// Upload stores an image remotely, charging transfer time to clock.
func (r *Remote) Upload(name string, snap *vmm.Snapshot, clock *vclock.Clock) {
	r.UploadTraced(name, snap, clock, nil)
}

// UploadTraced is Upload under an event scope. Only chunks the remote
// pool lacks are transferred; re-uploading an image whose content is
// already resident short-circuits to a metadata write (base cost only).
func (r *Remote) UploadTraced(name string, snap *vmm.Snapshot, clock *vclock.Clock, sc *events.Scope) {
	chunks := manifestChunks(snap)
	r.mu.Lock()
	var missing []chunk.Chunk
	for _, c := range chunks {
		if _, ok := r.pool[c.ID]; !ok {
			missing = append(missing, c)
		}
	}
	moved := chunk.BytesOf(missing)
	r.mu.Unlock()

	cost := CostRemoteUploadBase
	if moved > 0 {
		cost += transferCost(moved)
	}
	clock.Advance(cost)

	r.mu.Lock()
	for _, c := range missing {
		r.pool[c.ID] = c.Bytes
	}
	r.objects[name] = snap
	r.uploads++
	r.uploadCtr.Inc()
	r.xferBytes.ObserveExemplar(float64(moved), uint64(sc.TraceID()), clock.Now())
	r.objectsGauge.Set(int64(len(r.objects)))
	r.mu.Unlock()
	sc.Instant("snapshot", "remote-upload", clock.Now(),
		events.A("image", name),
		events.A("chunks", fmt.Sprint(len(missing))),
		events.A("bytes", fmt.Sprint(moved)))
}

// Fetch retrieves an image with no local pool to delta against — the
// whole image is transferred. Cost is charged to clock.
func (r *Remote) Fetch(name string, clock *vclock.Clock) (*vmm.Snapshot, error) {
	return r.FetchTraced(name, nil, clock, nil)
}

// FetchTraced retrieves an image, transferring only the chunks missing
// from the local store's pool (nil local means everything is missing).
// The transfer emits a "snapshot" event carrying the delta size, and
// any injected fault emits its own at the remote-fetch site.
func (r *Remote) FetchTraced(name string, local *Store, clock *vclock.Clock, sc *events.Scope) (*vmm.Snapshot, error) {
	r.mu.Lock()
	injector := r.injector
	r.mu.Unlock()
	if err := injector.InjectTraced(faults.SiteRemoteFetch, clock, sc, 0); err != nil {
		return nil, fmt.Errorf("snapshot: remote fetch of %q: %w", name, err)
	}
	r.mu.Lock()
	snap, ok := r.objects[name]
	if ok {
		r.fetches++
		r.fetchCtr.Inc()
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (not in remote storage)", ErrNotFound, name)
	}
	missing := local.MissingChunks(manifestChunks(snap))
	moved := chunk.BytesOf(missing)
	cost := CostRemoteFetchBase
	if moved > 0 {
		cost += transferCost(moved)
	}
	clock.Advance(cost)
	r.mu.Lock()
	r.chunksFetch.Add(int64(len(missing)))
	r.xferBytes.ObserveExemplar(float64(moved), uint64(sc.TraceID()), clock.Now())
	r.deltaBytes.ObserveExemplar(float64(moved), uint64(sc.TraceID()), clock.Now())
	r.mu.Unlock()
	sc.Instant("snapshot", "remote-fetch", clock.Now(),
		events.A("image", name),
		events.A("chunks", fmt.Sprint(len(missing))),
		events.A("bytes", fmt.Sprint(moved)))
	return snap, nil
}

// Delete removes an image's metadata from remote storage. Its chunks
// stay in the content pool (other manifests may reference them; the
// pool is append-only, like a real content-addressed blob store
// between garbage-collection passes).
func (r *Remote) Delete(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.objects, name)
	r.objectsGauge.Set(int64(len(r.objects)))
}

// Has reports whether an image exists remotely.
func (r *Remote) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.objects[name]
	return ok
}

// Objects returns how many images are resident remotely.
func (r *Remote) Objects() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.objects)
}

// Fetches and Uploads report transfer counts (for the ablations).
func (r *Remote) Fetches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fetches
}

// Uploads reports how many images were uploaded.
func (r *Remote) Uploads() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.uploads
}

func transferCost(bytes uint64) time.Duration {
	mib := (bytes + (1 << 20) - 1) >> 20
	return time.Duration(mib) * CostRemotePerMiB
}
