package snapshot

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/vclock"
	"repro/internal/vmm"
)

// Remote is an unbounded remote object store for snapshot images — the
// §6 mitigation the paper points to ("previous works using a
// snapshot-based approach leverage remote storage"): the host keeps a
// bounded local cache (Store) and falls back to fetching the image over
// the network instead of re-running the whole install phase.
//
// Fetch cost models a 10 Gbps storage network: a fixed request latency
// plus a per-byte transfer term, so pulling a ~240 MiB image costs
// ~200 ms — two orders of magnitude cheaper than a reinstall (~5 s) and
// one order more expensive than a local resume (~12 ms).
type Remote struct {
	mu      sync.Mutex
	objects map[string]*vmm.Snapshot
	fetches int
	uploads int

	// Observability (nil-safe; see Instrument).
	fetchCtr  *metrics.Counter
	uploadCtr *metrics.Counter
	xferBytes *metrics.Histogram

	// injector, when attached, injects failures at the
	// snapshot.remote.fetch site (nil-safe).
	injector *faults.Plane
}

// transferBuckets spans the image sizes the platform moves: a few MiB
// of runtime state up to multi-hundred-MiB post-JIT images.
func transferBuckets() []float64 {
	return []float64{
		1 << 20,   // 1 MiB
		16 << 20,  // 16 MiB
		64 << 20,  // 64 MiB
		128 << 20, // 128 MiB
		256 << 20, // 256 MiB
		512 << 20, // 512 MiB
		1 << 30,   // 1 GiB
	}
}

// Instrument attaches the remote store to a metrics registry:
// fetch/upload counters and a transfer-size histogram (both directions
// observe the image size in bytes).
func (r *Remote) Instrument(reg *metrics.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fetchCtr = reg.Counter("snapshot_remote_fetches_total")
	r.uploadCtr = reg.Counter("snapshot_remote_uploads_total")
	r.xferBytes = reg.HistogramWith("snapshot_remote_transfer_bytes", "bytes", transferBuckets())
}

// AttachFaults arms the remote store's fault-injection site.
func (r *Remote) AttachFaults(p *faults.Plane) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.injector = p
}

// Remote transfer cost constants (10 Gbps effective ≈ 1.25 GB/s).
const (
	CostRemoteFetchBase = 5 * time.Millisecond
	CostRemotePerMiB    = 840 * time.Microsecond
	// Uploads happen on the install path (already seconds long); the
	// same transfer rate applies.
	CostRemoteUploadBase = 5 * time.Millisecond
)

// NewRemote returns an empty remote store.
func NewRemote() *Remote {
	return &Remote{objects: make(map[string]*vmm.Snapshot)}
}

// Upload stores an image remotely, charging transfer time to clock.
func (r *Remote) Upload(name string, snap *vmm.Snapshot, clock *vclock.Clock) {
	r.UploadTraced(name, snap, clock, nil)
}

// UploadTraced is Upload under an event scope.
func (r *Remote) UploadTraced(name string, snap *vmm.Snapshot, clock *vclock.Clock, sc *events.Scope) {
	clock.Advance(CostRemoteUploadBase + transferCost(snap.TotalBytes()))
	r.mu.Lock()
	r.objects[name] = snap
	r.uploads++
	r.uploadCtr.Inc()
	r.xferBytes.Observe(float64(snap.TotalBytes()))
	r.mu.Unlock()
	sc.Instant("snapshot", "remote-upload", clock.Now(), events.A("image", name))
}

// Fetch retrieves an image, charging transfer time to clock.
func (r *Remote) Fetch(name string, clock *vclock.Clock) (*vmm.Snapshot, error) {
	return r.FetchTraced(name, clock, nil)
}

// FetchTraced is Fetch under an event scope: the transfer emits a
// "snapshot" event (and any injected fault emits its own at the
// remote-fetch site).
func (r *Remote) FetchTraced(name string, clock *vclock.Clock, sc *events.Scope) (*vmm.Snapshot, error) {
	r.mu.Lock()
	injector := r.injector
	r.mu.Unlock()
	if err := injector.InjectTraced(faults.SiteRemoteFetch, clock, sc, 0); err != nil {
		return nil, fmt.Errorf("snapshot: remote fetch of %q: %w", name, err)
	}
	r.mu.Lock()
	snap, ok := r.objects[name]
	if ok {
		r.fetches++
		r.fetchCtr.Inc()
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (not in remote storage)", ErrNotFound, name)
	}
	clock.Advance(CostRemoteFetchBase + transferCost(snap.TotalBytes()))
	r.mu.Lock()
	r.xferBytes.Observe(float64(snap.TotalBytes()))
	r.mu.Unlock()
	sc.Instant("snapshot", "remote-fetch", clock.Now(), events.A("image", name))
	return snap, nil
}

// Delete removes an image from remote storage.
func (r *Remote) Delete(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.objects, name)
}

// Has reports whether an image exists remotely.
func (r *Remote) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.objects[name]
	return ok
}

// Fetches and Uploads report transfer counts (for the ablations).
func (r *Remote) Fetches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fetches
}

// Uploads reports how many images were uploaded.
func (r *Remote) Uploads() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.uploads
}

func transferCost(bytes uint64) time.Duration {
	mib := (bytes + (1 << 20) - 1) >> 20
	return time.Duration(mib) * CostRemotePerMiB
}
