// Package snapshot stores VM snapshot images on (simulated) disk. The
// paper's §6 notes that per-function snapshots cost disk space and
// proposes bounding it with a replacement policy that keeps frequently
// accessed functions' snapshots; Store implements exactly that: a byte
// budget with least-recently-used eviction, plus pinning for snapshots
// that must survive (e.g. while being restored).
package snapshot

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/vmm"
)

// Errors returned by the store.
var (
	ErrNotFound  = errors.New("snapshot: not found (never installed or evicted)")
	ErrTooLarge  = errors.New("snapshot: image exceeds store budget")
	ErrAllPinned = errors.New("snapshot: budget exceeded and all images pinned")
)

// Store is a bounded snapshot repository keyed by function name.
type Store struct {
	mu        sync.Mutex
	budget    uint64
	used      uint64
	seq       uint64
	entries   map[string]*entry
	evictions int

	// Observability (nil-safe; see Instrument).
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictCnt  *metrics.Counter
	usedGauge *metrics.Gauge
}

// Instrument attaches the store to a metrics registry: Get hits and
// misses (a miss means the image was evicted or never installed and
// the invocation pays a remote fetch or reinstall), LRU evictions, and
// resident disk bytes.
func (s *Store) Instrument(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = reg.Counter("snapshot_store_hits_total")
	s.misses = reg.Counter("snapshot_store_misses_total")
	s.evictCnt = reg.Counter("snapshot_store_evictions_total")
	s.usedGauge = reg.Gauge("snapshot_store_used_bytes")
}

type entry struct {
	snap     *vmm.Snapshot
	size     uint64
	lastUsed uint64
	pins     int
}

// NewStore returns a store with the given disk budget in bytes (0 means
// unbounded).
func NewStore(budget uint64) *Store {
	return &Store{budget: budget, entries: make(map[string]*entry)}
}

// Put stores (or replaces) the snapshot for a function, evicting
// least-recently-used images as needed to fit the budget.
func (s *Store) Put(name string, snap *vmm.Snapshot) error {
	size := snap.TotalBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && size > s.budget {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, s.budget)
	}
	if old, ok := s.entries[name]; ok {
		s.used -= old.size
		delete(s.entries, name)
	}
	if err := s.evictFor(size); err != nil {
		return err
	}
	s.seq++
	s.entries[name] = &entry{snap: snap, size: size, lastUsed: s.seq}
	s.used += size
	s.usedGauge.Set(int64(s.used))
	return nil
}

// evictFor frees space until size fits; caller holds the lock.
func (s *Store) evictFor(size uint64) error {
	if s.budget == 0 {
		return nil
	}
	for s.used+size > s.budget {
		victim := ""
		var oldest uint64
		for name, e := range s.entries {
			if e.pins > 0 {
				continue
			}
			if victim == "" || e.lastUsed < oldest {
				victim = name
				oldest = e.lastUsed
			}
		}
		if victim == "" {
			return ErrAllPinned
		}
		s.used -= s.entries[victim].size
		delete(s.entries, victim)
		s.evictions++
		s.evictCnt.Inc()
		s.usedGauge.Set(int64(s.used))
	}
	return nil
}

// Get returns the snapshot for a function, marking it recently used.
func (s *Store) Get(name string) (*vmm.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		s.misses.Inc()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s.hits.Inc()
	s.seq++
	e.lastUsed = s.seq
	return e.snap, nil
}

// Pin prevents eviction of a function's snapshot until Unpin; pins
// nest.
func (s *Store) Pin(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.pins++
	return nil
}

// Unpin releases one pin.
func (s *Store) Unpin(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[name]; ok && e.pins > 0 {
		e.pins--
	}
}

// Remove deletes a function's snapshot.
func (s *Store) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[name]; ok {
		s.used -= e.size
		delete(s.entries, name)
		s.usedGauge.Set(int64(s.used))
	}
}

// Has reports whether a snapshot is resident.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[name]
	return ok
}

// UsedBytes returns current disk usage; Budget the configured limit;
// Evictions how many images the replacement policy dropped.
func (s *Store) UsedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Budget returns the configured byte budget (0 = unbounded).
func (s *Store) Budget() uint64 { return s.budget }

// Evictions returns the number of LRU evictions performed.
func (s *Store) Evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Names returns resident snapshot names in lexical order.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
