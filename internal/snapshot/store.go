// Package snapshot stores VM snapshot images on (simulated) disk. The
// paper's §6 notes that per-function snapshots cost disk space and
// proposes bounding it with a replacement policy that keeps frequently
// accessed functions' snapshots; Store implements that — a byte budget
// with least-recently-used eviction, plus pinning for snapshots that
// must survive (e.g. while being restored) — over a content-addressed
// chunk pool: images are split into fixed-size chunks (internal/chunk)
// and the pool stores each distinct chunk once, so a post-JIT function
// snapshot costs only its *delta* over the shared base-runtime image
// and disk usage is the unique-chunk footprint, not the sum of image
// sizes. See docs/snapshots.md.
package snapshot

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/chunk"
	"repro/internal/metrics"
	"repro/internal/vmm"
)

// Errors returned by the store.
var (
	ErrNotFound  = errors.New("snapshot: not found (never installed or evicted)")
	ErrTooLarge  = errors.New("snapshot: image exceeds store budget")
	ErrAllPinned = errors.New("snapshot: budget exceeded and all images pinned")
)

// Store is a bounded snapshot repository keyed by function name, backed
// by a refcounted chunk pool shared across all resident images.
type Store struct {
	mu      sync.Mutex
	budget  uint64
	used    uint64 // unique chunk bytes resident in the pool
	seq     uint64
	entries map[string]*entry
	pool    map[uint64]*poolChunk
	// baseDeps[name] counts resident delta images whose BaseKey is
	// name: a base-runtime image with live dependents is never evicted.
	baseDeps      map[string]int
	evictions     int
	invalidations int

	// Observability (nil-safe; see Instrument).
	hits          *metrics.Counter
	misses        *metrics.Counter
	evictCnt      *metrics.Counter
	invalCnt      *metrics.Counter
	chunksStored  *metrics.Counter
	chunksDeduped *metrics.Counter
	usedGauge     *metrics.Gauge
}

// Instrument attaches the store to a metrics registry: Get hits and
// misses (a miss means the image was evicted or never installed and
// the invocation pays a remote fetch or reinstall), LRU evictions,
// content-key invalidations, per-chunk pool traffic (stored = new bytes
// admitted, deduped = chunks already resident via another image), and
// resident disk bytes (unique chunk footprint).
func (s *Store) Instrument(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = reg.Counter("snapshot_store_hits_total")
	s.misses = reg.Counter("snapshot_store_misses_total")
	s.evictCnt = reg.Counter("snapshot_store_evictions_total")
	s.invalCnt = reg.Counter("snapshot_store_invalidations_total")
	s.chunksStored = reg.Counter("snapshot_chunks_stored_total")
	s.chunksDeduped = reg.Counter("snapshot_chunks_deduped_total")
	s.usedGauge = reg.Gauge("snapshot_store_used_bytes")
}

type poolChunk struct {
	bytes uint64
	refs  int
}

type entry struct {
	snap     *vmm.Snapshot
	chunks   []chunk.Chunk
	size     uint64 // logical image size (manifest total)
	lastUsed uint64
	pins     int
}

// NewStore returns a store with the given disk budget in bytes (0 means
// unbounded).
func NewStore(budget uint64) *Store {
	return &Store{
		budget:   budget,
		entries:  make(map[string]*entry),
		pool:     make(map[uint64]*poolChunk),
		baseDeps: make(map[string]int),
	}
}

// manifestChunks returns the image's chunk list; a snapshot without a
// manifest (not produced by TakeSnapshot) degrades to one opaque chunk.
func manifestChunks(snap *vmm.Snapshot) []chunk.Chunk {
	if m := snap.Manifest(); m != nil {
		return m.Chunks()
	}
	one := chunk.Build([]chunk.Region{{Class: "img:" + snap.ID, Bytes: snap.TotalBytes()}})
	return one.Chunks()
}

// uniqueBytes is the pool footprint of a chunk list alone (distinct
// chunk IDs counted once); caller need not hold the lock.
func uniqueBytes(chunks []chunk.Chunk) uint64 {
	seen := make(map[uint64]struct{}, len(chunks))
	var total uint64
	for _, c := range chunks {
		if _, ok := seen[c.ID]; ok {
			continue
		}
		seen[c.ID] = struct{}{}
		total += c.Bytes
	}
	return total
}

// Put stores (or replaces) the snapshot for a function. Only the bytes
// of chunks not already resident are admitted to the pool; LRU images
// are evicted as needed to fit the budget (chunks shared with survivors
// — including the incoming image — stay resident). Replacing an entry
// whose ContentKey changed counts as an invalidation: the stale image's
// private chunks are released.
func (s *Store) Put(name string, snap *vmm.Snapshot) error {
	chunks := manifestChunks(snap)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && uniqueBytes(chunks) > s.budget {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, uniqueBytes(chunks), s.budget)
	}
	if old, ok := s.entries[name]; ok {
		if old.snap.ContentKey != "" && old.snap.ContentKey != snap.ContentKey {
			s.invalidations++
			s.invalCnt.Inc()
		}
		s.removeLocked(name)
	}
	// Admit the incoming chunks first: eviction below then cannot free
	// a chunk the new image shares with a victim.
	for _, c := range chunks {
		s.refChunkLocked(c)
	}
	if err := s.evictToFitLocked(); err != nil {
		for _, c := range chunks {
			s.unrefChunkLocked(c.ID)
		}
		s.usedGauge.Set(int64(s.used))
		return err
	}
	s.seq++
	s.entries[name] = &entry{snap: snap, chunks: chunks, size: snap.TotalBytes(), lastUsed: s.seq}
	if snap.BaseKey != "" {
		s.baseDeps[snap.BaseKey]++
	}
	s.usedGauge.Set(int64(s.used))
	return nil
}

func (s *Store) refChunkLocked(c chunk.Chunk) {
	if pc, ok := s.pool[c.ID]; ok {
		pc.refs++
		s.chunksDeduped.Inc()
		return
	}
	s.pool[c.ID] = &poolChunk{bytes: c.Bytes, refs: 1}
	s.used += c.Bytes
	s.chunksStored.Inc()
}

func (s *Store) unrefChunkLocked(id uint64) {
	pc, ok := s.pool[id]
	if !ok {
		return
	}
	pc.refs--
	if pc.refs == 0 {
		s.used -= pc.bytes
		delete(s.pool, id)
	}
}

// removeLocked drops an entry and releases its chunk references.
func (s *Store) removeLocked(name string) {
	e, ok := s.entries[name]
	if !ok {
		return
	}
	for _, c := range e.chunks {
		s.unrefChunkLocked(c.ID)
	}
	if e.snap.BaseKey != "" {
		if s.baseDeps[e.snap.BaseKey]--; s.baseDeps[e.snap.BaseKey] == 0 {
			delete(s.baseDeps, e.snap.BaseKey)
		}
	}
	delete(s.entries, name)
}

// evictToFitLocked frees space until the pool fits the budget, evicting
// least-recently-used entries. Pinned entries and base images with
// resident dependent deltas are skipped; if only those remain the store
// is wedged and ErrAllPinned surfaces.
func (s *Store) evictToFitLocked() error {
	if s.budget == 0 {
		return nil
	}
	for s.used > s.budget {
		victim := ""
		var oldest uint64
		for name, e := range s.entries {
			if e.pins > 0 || s.baseDeps[name] > 0 {
				continue
			}
			if victim == "" || e.lastUsed < oldest {
				victim = name
				oldest = e.lastUsed
			}
		}
		if victim == "" {
			return ErrAllPinned
		}
		s.removeLocked(victim)
		s.evictions++
		s.evictCnt.Inc()
		s.usedGauge.Set(int64(s.used))
	}
	return nil
}

// Get returns the snapshot for a function, marking it recently used.
func (s *Store) Get(name string) (*vmm.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		s.misses.Inc()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s.hits.Inc()
	s.seq++
	e.lastUsed = s.seq
	return e.snap, nil
}

// Pin prevents eviction of a function's snapshot until Unpin; pins
// nest.
func (s *Store) Pin(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.pins++
	return nil
}

// Unpin releases one pin.
func (s *Store) Unpin(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[name]; ok && e.pins > 0 {
		e.pins--
	}
}

// Remove deletes a function's snapshot, releasing its chunk references.
func (s *Store) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(name)
	s.usedGauge.Set(int64(s.used))
}

// Has reports whether a snapshot is resident.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[name]
	return ok
}

// HasChunk reports whether a chunk is resident in the pool.
func (s *Store) HasChunk(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pool[id]
	return ok
}

// MissingChunks filters a chunk list down to the chunks not resident in
// the pool — what a remote fetch actually has to move. A nil store
// (no local pool) misses everything.
func (s *Store) MissingChunks(chunks []chunk.Chunk) []chunk.Chunk {
	if s == nil {
		return chunks
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []chunk.Chunk
	for _, c := range chunks {
		if _, ok := s.pool[c.ID]; !ok {
			out = append(out, c)
		}
	}
	return out
}

// UsedBytes returns current disk usage: the unique-chunk footprint of
// the pool, which is less than the sum of resident image sizes whenever
// images share content.
func (s *Store) UsedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// LogicalBytes returns the sum of resident image sizes — what the same
// images would occupy in a flat (non-deduplicating) store. The ratio
// LogicalBytes/UsedBytes is the dedup factor.
func (s *Store) LogicalBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, e := range s.entries {
		total += e.size
	}
	return total
}

// Budget returns the configured byte budget (0 = unbounded).
func (s *Store) Budget() uint64 { return s.budget }

// Evictions returns the number of LRU evictions performed.
func (s *Store) Evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Invalidations returns how many stale images (ContentKey changed on
// redeploy) were dropped.
func (s *Store) Invalidations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invalidations
}

// Names returns resident snapshot names in lexical order.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
