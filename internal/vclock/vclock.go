// Package vclock provides a deterministic virtual clock and a seeded
// pseudo-random source for the Fireworks simulation.
//
// Every latency-bearing operation in the simulated stack (VM boot, JIT
// compilation, bytecode execution, disk and network I/O, queue fetches)
// charges virtual time to a Clock instead of consuming wall-clock time.
// This makes every experiment fully deterministic and independent of the
// host the simulation runs on: latencies are a pure function of the
// workload and the calibrated cost model.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// valid clock positioned at virtual time zero.
//
// A Clock is safe for concurrent use. In practice each simulated
// invocation owns its own Clock, but shared components (e.g. a host-wide
// timeline) may be advanced from several goroutines.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a clock positioned at virtual time zero.
func New() *Clock { return &Clock{} }

// NewAt returns a clock positioned at the given virtual time.
func NewAt(t time.Duration) *Clock { return &Clock{now: t} }

// Now returns the current virtual time as an offset from the epoch.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new current time.
// Advancing by a negative duration panics: virtual time never rewinds.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to time t. If t is earlier than the
// current time the clock is left unchanged; a clock never rewinds. It
// returns the resulting current time.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Since reports the virtual time elapsed since the given mark.
func (c *Clock) Since(mark time.Duration) time.Duration {
	return c.Now() - mark
}

// Span measures the virtual time consumed by fn on this clock.
func (c *Clock) Span(fn func()) time.Duration {
	start := c.Now()
	fn()
	return c.Since(start)
}

// Rand is a small deterministic pseudo-random source (SplitMix64). It is
// used to add bounded jitter to modeled costs so repeated invocations are
// not byte-identical while the experiment as a whole stays reproducible.
type Rand struct {
	mu    sync.Mutex
	state uint64
}

// NewRand returns a deterministic random source seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value in the SplitMix64 sequence.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a deterministic value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("vclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a deterministic value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns d scaled by a deterministic factor in [1-f, 1+f].
// It is used to perturb modeled costs by at most fraction f.
func (r *Rand) Jitter(d time.Duration, f float64) time.Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	return time.Duration(float64(d) * scale)
}
