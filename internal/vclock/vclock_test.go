package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(3 * time.Millisecond); got != 3*time.Millisecond {
		t.Fatalf("Advance = %v", got)
	}
	c.Advance(2 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v, want 5ms", c.Now())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative advance")
		}
	}()
	New().Advance(-1)
}

func TestAdvanceToNeverRewinds(t *testing.T) {
	c := NewAt(10 * time.Millisecond)
	c.AdvanceTo(5 * time.Millisecond)
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("clock rewound to %v", c.Now())
	}
	c.AdvanceTo(25 * time.Millisecond)
	if c.Now() != 25*time.Millisecond {
		t.Fatalf("AdvanceTo landed at %v", c.Now())
	}
}

func TestSinceAndSpan(t *testing.T) {
	c := New()
	mark := c.Now()
	c.Advance(7 * time.Millisecond)
	if c.Since(mark) != 7*time.Millisecond {
		t.Fatalf("Since = %v", c.Since(mark))
	}
	span := c.Span(func() { c.Advance(4 * time.Millisecond) })
	if span != 4*time.Millisecond {
		t.Fatalf("Span = %v", span)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 20_000*time.Nanosecond {
		t.Fatalf("Now = %v, want 20000ns (lost updates)", c.Now())
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed sequences diverge")
		}
	}
	cDiff := NewRand(43)
	same := 0
	a2 := NewRand(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == cDiff.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(99)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(5)
	base := time.Millisecond
	for i := 0; i < 1000; i++ {
		d := r.Jitter(base, 0.1)
		if d < 900*time.Microsecond || d > 1100*time.Microsecond {
			t.Fatalf("Jitter out of 10%% band: %v", d)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero-fraction jitter changed the duration")
	}
}
