package insight

import (
	"sort"
	"time"

	"repro/internal/events"
)

// span is one reconstructed journal span with normalized times.
type span struct {
	id        events.SpanID
	parent    events.SpanID
	component string
	name      string
	node      string
	vm        string
	start     time.Duration // normalized (trace starts at 0, clamped monotonic)
	end       time.Duration
	closed    bool
	errMsg    string
	attrs     map[string]string // begin attrs (topic, step, workflow, ...)
	faults    int               // fault instants attached to this span
	children  []*span

	total time.Duration // end - start
	self  time.Duration // total minus the children's totals
}

// instant is one non-span event retained for graph building (msgbus
// produce/consume hops, cluster failover links, fault marks).
type instant struct {
	parent    events.SpanID
	component string
	name      string
	ts        time.Duration
	link      events.Ref
	attrs     map[string]string
}

// traceTree is one trace's reconstructed span forest.
type traceTree struct {
	id       events.TraceID
	spans    map[events.SpanID]*span
	order    []*span // spans in begin order
	roots    []*span
	instants []instant
	total    time.Duration // max normalized timestamp seen
}

// buildTrees reconstructs one tree per trace from a journal event
// stream (append order). Traceless events (watchdog alerts, global
// instants) are skipped. Per-trace timestamps are normalized exactly
// like the Chrome exporter: shifted to start at zero, then clamped
// monotonic so a failover attempt's clock restart cannot run time
// backwards. Trees come back in first-seen order.
func buildTrees(evs []events.Event) []*traceTree {
	trees := map[events.TraceID]*traceTree{}
	shifts := map[events.TraceID]*struct{ shift, lastNorm time.Duration }{}
	var order []*traceTree
	for _, e := range evs {
		if e.Trace == 0 {
			continue
		}
		t := trees[e.Trace]
		if t == nil {
			t = &traceTree{id: e.Trace, spans: map[events.SpanID]*span{}}
			trees[e.Trace] = t
			order = append(order, t)
			shifts[e.Trace] = &struct{ shift, lastNorm time.Duration }{shift: -e.TS}
		}
		st := shifts[e.Trace]
		n := e.TS + st.shift
		if n < st.lastNorm {
			st.shift += st.lastNorm - n
			n = st.lastNorm
		}
		st.lastNorm = n
		if n > t.total {
			t.total = n
		}
		switch e.Kind {
		case events.KindBegin:
			s := &span{
				id: e.Span, parent: e.Parent,
				component: e.Component, name: e.Name,
				node: e.Node, vm: e.VM,
				start: n, end: n,
				attrs: attrMap(e.Attrs),
			}
			t.spans[e.Span] = s
			t.order = append(t.order, s)
		case events.KindEnd:
			if s := t.spans[e.Span]; s != nil {
				s.end = n
				s.closed = true
				if msg, ok := attrValue(e.Attrs, "error"); ok {
					s.errMsg = msg
				}
			}
		case events.KindInstant:
			if e.Component == "faults" {
				if s := t.spans[e.Parent]; s != nil {
					s.faults++
				}
			}
			t.instants = append(t.instants, instant{
				parent: e.Parent, component: e.Component, name: e.Name,
				ts: n, link: e.Link, attrs: attrMap(e.Attrs),
			})
		}
	}
	for _, t := range order {
		t.finish()
	}
	return order
}

// finish closes unterminated spans at the trace end, wires children,
// and computes total/self times.
func (t *traceTree) finish() {
	for _, s := range t.order {
		if !s.closed {
			s.end = t.total
		}
		if s.end < s.start {
			s.end = s.start
		}
		s.total = s.end - s.start
	}
	for _, s := range t.order {
		if p := t.spans[s.parent]; p != nil && p != s {
			p.children = append(p.children, s)
		} else {
			t.roots = append(t.roots, s)
		}
	}
	for _, s := range t.order {
		childSum := time.Duration(0)
		for _, c := range s.children {
			childSum += c.total
		}
		s.self = s.total - childSum
		if s.self < 0 {
			// Overlapping children (concurrent sub-spans share the
			// parent's wall): the parent keeps no self time.
			s.self = 0
		}
	}
}

// site names a span's aggregation key in the blame table.
func (s *span) site() string { return s.component + ":" + s.name }

// PathStep is one hop of a trace's critical path.
type PathStep struct {
	Span       uint64        `json:"span"`
	Site       string        `json:"site"` // component:name
	Node       string        `json:"node,omitempty"`
	VM         string        `json:"vm,omitempty"`
	Start      time.Duration `json:"start_ns"`
	End        time.Duration `json:"end_ns"`
	Self       time.Duration `json:"self_ns"`
	Total      time.Duration `json:"total_ns"`
	ShareMilli int64         `json:"share_milli"` // Total/root-total in 1/1000ths
	Error      string        `json:"error,omitempty"`
	Faults     int           `json:"faults,omitempty"`
}

// BlameEntry is one row of the ranked blame table: a span site with
// its aggregate self time across the trace.
type BlameEntry struct {
	Site       string        `json:"site"`
	Count      int           `json:"count"`
	Self       time.Duration `json:"self_ns"`
	Total      time.Duration `json:"total_ns"`
	ShareMilli int64         `json:"share_milli"` // Self/trace-total in 1/1000ths
	Faults     int           `json:"faults,omitempty"`
	Errors     int           `json:"errors,omitempty"`
}

// TraceInsight is the critical-path analysis of one trace.
type TraceInsight struct {
	Trace  events.TraceID `json:"trace"`
	Root   string         `json:"root"` // root span's site
	Total  time.Duration  `json:"total_ns"`
	Spans  int            `json:"spans"`
	Faults int            `json:"faults,omitempty"`
	Errors int            `json:"errors,omitempty"`
	Path   []PathStep     `json:"path"`
	Blame  []BlameEntry   `json:"blame"`
}

// insight computes the critical path and blame table of one trace.
func (t *traceTree) insight() TraceInsight {
	ti := TraceInsight{Trace: t.id, Total: t.total, Spans: len(t.order)}
	if len(t.roots) == 0 {
		return ti
	}
	root := t.roots[0]
	ti.Root = root.site()
	if root.total > ti.Total {
		ti.Total = root.total
	}

	// Critical path: from the root, repeatedly descend into the child
	// holding the most total time. Children on one virtual clock run
	// sequentially, so the dominant child is the hop that decides the
	// end-to-end latency.
	denom := ti.Total
	if denom <= 0 {
		denom = 1
	}
	for s := root; s != nil; {
		ti.Path = append(ti.Path, PathStep{
			Span: uint64(s.id), Site: s.site(), Node: s.node, VM: s.vm,
			Start: s.start, End: s.end, Self: s.self, Total: s.total,
			ShareMilli: int64(s.total * 1000 / denom),
			Error:      s.errMsg, Faults: s.faults,
		})
		var next *span
		for _, c := range s.children {
			if next == nil || c.total > next.total ||
				(c.total == next.total && c.start < next.start) {
				next = c
			}
		}
		s = next
	}

	// Blame: aggregate self time by site across every span of the
	// trace, ranked by self descending.
	agg := map[string]*BlameEntry{}
	var sites []string
	for _, s := range t.order {
		ti.Faults += s.faults
		if s.errMsg != "" {
			ti.Errors++
		}
		b := agg[s.site()]
		if b == nil {
			b = &BlameEntry{Site: s.site()}
			agg[s.site()] = b
			sites = append(sites, s.site())
		}
		b.Count++
		b.Self += s.self
		b.Total += s.total
		b.Faults += s.faults
		if s.errMsg != "" {
			b.Errors++
		}
	}
	sort.Strings(sites)
	for _, site := range sites {
		b := agg[site]
		b.ShareMilli = int64(b.Self * 1000 / denom)
		ti.Blame = append(ti.Blame, *b)
	}
	sort.SliceStable(ti.Blame, func(i, j int) bool {
		if ti.Blame[i].Self != ti.Blame[j].Self {
			return ti.Blame[i].Self > ti.Blame[j].Self
		}
		return ti.Blame[i].Site < ti.Blame[j].Site
	})
	return ti
}

func attrMap(attrs []events.Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func attrValue(attrs []events.Attr, key string) (string, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}
