package insight

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
)

// invokeTrace journals one synthetic cluster invoke:
// gateway → cluster:request → core:invoke on node → three stages, with
// the restore stage dominating (restoreCost) and optionally a fault
// instant inside it.
func invokeTrace(j *events.Journal, restoreCost time.Duration, fault bool) events.TraceID {
	ts := time.Duration(0)
	sc := j.NewScope("gateway", "POST /invoke", ts)
	sc.Begin("cluster", "request", ts, events.A("function", "fact"))
	sc.SetNode("node-01")
	sc.Begin("core", "invoke", ts, events.A("function", "fact"))

	sc.Begin("core", "snapshot-get", ts)
	ts += 2 * time.Millisecond
	sc.End(ts)

	sc.Begin("core", "restore-or-reuse", ts)
	if fault {
		sc.Instant("faults", "vmm.restore", ts, events.A("kind", "latency"), events.A("spike", "1.5s"))
	}
	ts += restoreCost
	sc.End(ts)

	sc.Begin("core", "execute", ts)
	ts += 5 * time.Millisecond
	sc.End(ts)

	sc.End(ts) // core:invoke
	sc.End(ts) // cluster:request
	id := sc.TraceID()
	sc.Close(ts)
	return id
}

func TestCriticalPathBlameRanksDominantStage(t *testing.T) {
	j := events.NewJournal(0)
	id := invokeTrace(j, 40*time.Millisecond, false)
	r := Analyze(j.Events())

	if r.TraceCount != 1 || len(r.Traces) != 1 {
		t.Fatalf("trace count = %d, want 1", r.TraceCount)
	}
	ti := r.Traces[0]
	if ti.Trace != id {
		t.Errorf("trace id = %d, want %d", ti.Trace, id)
	}
	if ti.Root != "gateway:POST /invoke" {
		t.Errorf("root = %q", ti.Root)
	}
	if ti.Total != 47*time.Millisecond {
		t.Errorf("total = %v, want 47ms", ti.Total)
	}
	if len(ti.Blame) == 0 || ti.Blame[0].Site != "core:restore-or-reuse" {
		t.Fatalf("top blame = %+v, want core:restore-or-reuse first", ti.Blame)
	}
	if ti.Blame[0].Self != 40*time.Millisecond {
		t.Errorf("restore self = %v, want 40ms", ti.Blame[0].Self)
	}

	// The critical path must descend gateway → cluster → invoke →
	// restore (the dominant stage).
	var sites []string
	for _, st := range ti.Path {
		sites = append(sites, st.Site)
	}
	want := []string{"gateway:POST /invoke", "cluster:request", "core:invoke", "core:restore-or-reuse"}
	if strings.Join(sites, "|") != strings.Join(want, "|") {
		t.Errorf("path = %v, want %v", sites, want)
	}
	// The leaf carries all its time as self.
	leaf := ti.Path[len(ti.Path)-1]
	if leaf.Self != leaf.Total || leaf.Self != 40*time.Millisecond {
		t.Errorf("leaf self/total = %v/%v", leaf.Self, leaf.Total)
	}
}

func TestFaultAttributionOnEnclosingSpan(t *testing.T) {
	j := events.NewJournal(0)
	invokeTrace(j, 1500*time.Millisecond, true)
	ti := Analyze(j.Events()).Traces[0]
	if ti.Faults != 1 {
		t.Fatalf("trace faults = %d, want 1", ti.Faults)
	}
	if ti.Blame[0].Site != "core:restore-or-reuse" || ti.Blame[0].Faults != 1 {
		t.Errorf("top blame = %+v, want faulted restore stage", ti.Blame[0])
	}
}

func TestClockRestartNormalization(t *testing.T) {
	// A failover attempt restarts the invocation clock at zero; the
	// normalizer must clamp rather than run time backwards.
	j := events.NewJournal(0)
	sc := j.NewScope("cluster", "request", 10*time.Millisecond)
	sc.Begin("core", "invoke", 12*time.Millisecond)
	sc.End(0) // clock restarted
	sc.Begin("core", "invoke", 3*time.Millisecond)
	sc.End(4*time.Millisecond)
	sc.Close(4 * time.Millisecond)

	ti := Analyze(j.Events()).Traces[0]
	for _, b := range ti.Blame {
		if b.Self < 0 || b.Total < 0 {
			t.Errorf("negative time after normalization: %+v", b)
		}
	}
	// First event shifts to 0; begin@12ms → 2ms; end@0 clamps to 2ms;
	// second attempt 3ms→4ms lands at... shift = 2ms-3ms already
	// clamped: norm(3ms) < lastNorm(2ms)? no (3-10 = -7 +shift...).
	if ti.Total < 0 {
		t.Errorf("total = %v", ti.Total)
	}
}

func TestServiceGraphEdgesAndBusHops(t *testing.T) {
	j := events.NewJournal(0)
	sc := j.NewScope("gateway", "POST /invoke", 0)
	sc.SetNode("node-01")
	sc.Begin("core", "invoke", 0)
	sc.Begin("core", "topic-produce", time.Millisecond)
	sc.Instant("msgbus", "produce", time.Millisecond, events.A("topic", "fn-fact"))
	sc.End(2 * time.Millisecond)
	sc.Begin("core", "execute", 2*time.Millisecond)
	sc.InstantLinked("msgbus", "consume", 3*time.Millisecond, events.Ref{}, events.A("topic", "fn-fact"))
	sc.End(4 * time.Millisecond)
	sc.End(4 * time.Millisecond)
	sc.Close(4 * time.Millisecond)

	g := Analyze(j.Events()).Graph
	find := func(from, to string) *GraphEdge {
		for i := range g.Edges {
			if g.Edges[i].From == from && g.Edges[i].To == to {
				return &g.Edges[i]
			}
		}
		return nil
	}
	if e := find("gateway", "node:node-01"); e == nil || e.Count != 1 {
		t.Errorf("gateway→node edge = %+v", e)
	}
	if e := find("node:node-01", "stage:topic-produce"); e == nil {
		t.Error("missing node→stage edge")
	}
	if e := find("stage:topic-produce", "topic:fn-fact"); e == nil || e.Count != 1 {
		t.Errorf("produce hop edge = %+v", e)
	}
	if e := find("topic:fn-fact", "stage:execute"); e == nil || e.Count != 1 {
		t.Errorf("consume hop edge = %+v", e)
	}
	if g.WindowNS != int64(4*time.Millisecond) {
		t.Errorf("window = %d", g.WindowNS)
	}
}

func TestReportDeterminismAcrossShardLayouts(t *testing.T) {
	build := func(shards int) *bytes.Buffer {
		j := events.NewJournalShards(0, shards)
		invokeTrace(j, 40*time.Millisecond, true)
		invokeTrace(j, 10*time.Millisecond, false)
		r := Analyze(j.Events())
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Graph.WriteDOT(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Graph.WriteMermaid(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b, c := build(1), build(1), build(8)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same-workload reports differ")
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("report depends on journal shard layout")
	}
}

func TestSlowestOrdersByTotal(t *testing.T) {
	j := events.NewJournal(0)
	slow := invokeTrace(j, 100*time.Millisecond, false)
	fast := invokeTrace(j, time.Millisecond, false)
	mid := invokeTrace(j, 50*time.Millisecond, false)
	r := Analyze(j.Events())
	top := r.Slowest(2)
	if len(top) != 2 || top[0].Trace != slow || top[1].Trace != mid {
		t.Errorf("slowest(2) = %+v, want [%d %d]", top, slow, mid)
	}
	all := r.Slowest(0)
	if len(all) != 3 || all[2].Trace != fast {
		t.Errorf("slowest(0) returned %d traces", len(all))
	}
}

func TestDiffAttributesDeltaToChangedSite(t *testing.T) {
	mk := func(restore time.Duration, fault bool) *Report {
		j := events.NewJournal(0)
		invokeTrace(j, restore, fault)
		return Analyze(j.Events())
	}
	a := mk(10*time.Millisecond, false)
	b := mk(1510*time.Millisecond, true)
	d := Diff(a, b)
	if d.Delta != 1500*time.Millisecond {
		t.Errorf("delta = %v, want 1.5s", d.Delta)
	}
	if len(d.Sites) == 0 || d.Sites[0].Site != "core:restore-or-reuse" {
		t.Fatalf("top site delta = %+v, want restore stage", d.Sites)
	}
	if d.Sites[0].Delta != 1500*time.Millisecond || d.Sites[0].FaultsB != 1 {
		t.Errorf("restore delta = %+v", d.Sites[0])
	}
}

func TestAnalyzeTraceSingle(t *testing.T) {
	j := events.NewJournal(0)
	id := invokeTrace(j, 20*time.Millisecond, false)
	ti, ok := AnalyzeTrace(j.Trace(id))
	if !ok || ti.Trace != id || len(ti.Path) == 0 {
		t.Fatalf("AnalyzeTrace = %+v, %v", ti, ok)
	}
	if _, ok := AnalyzeTrace(nil); ok {
		t.Error("AnalyzeTrace(nil) reported ok")
	}
}

func TestWorkflowDoneClosesDAGInsight(t *testing.T) {
	// A workflow run trace: run root, two steps, terminal done instant.
	j := events.NewJournal(0)
	sc := j.NewScope("workflow", "run", 0, events.A("workflow", "alexa"), events.A("run", "r000001"))
	sc.Begin("workflow", "step", 0, events.A("step", "parse"))
	sc.End(3 * time.Millisecond)
	sc.Begin("workflow", "step", 3*time.Millisecond, events.A("step", "reply"))
	sc.End(9 * time.Millisecond)
	sc.Instant("workflow", "done", 9*time.Millisecond,
		events.A("status", "completed"), events.A("steps_completed", "2"))
	sc.Close(9 * time.Millisecond)

	r := Analyze(j.Events())
	ti := r.Traces[0]
	if ti.Root != "workflow:run" || ti.Total != 9*time.Millisecond {
		t.Errorf("workflow insight = root %q total %v", ti.Root, ti.Total)
	}
	// Critical path descends into the dominant step.
	if leaf := ti.Path[len(ti.Path)-1]; leaf.Site != "workflow:step" {
		t.Errorf("workflow path leaf = %+v", leaf)
	}
	var names []string
	for _, n := range r.Graph.Nodes {
		names = append(names, n.Name)
	}
	joined := strings.Join(names, "|")
	for _, want := range []string{"workflow:alexa", "step:parse", "step:reply"} {
		if !strings.Contains(joined, want) {
			t.Errorf("graph nodes %v missing %q", names, want)
		}
	}
}
