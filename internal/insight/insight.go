// Package insight is the analytics layer over the causal event
// journal: it turns raw internal/events streams into answers — where
// did an invocation's latency go (critical-path analysis with a ranked
// blame table), how do the components talk to each other (a service
// graph with per-edge RED stats), which concrete traces sit in the
// tail (slowest-K, joined to histogram exemplars), and what changed
// between two runs (report diffing).
//
// Everything here is a pure function of the journal contents: spans
// are reconstructed from begin/end pairs, per-trace timestamps are
// normalized with the same monotonic clamp the Chrome exporter applies
// (failover attempts restart their invocation clocks at zero), and
// every exported slice is sorted, so two same-seed runs produce
// byte-identical JSON and DOT reports — the property the insight
// experiment pins down.
package insight

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/events"
	"repro/internal/metrics"
)

// Report is one full analysis of a journal: every trace's critical
// path and blame table plus the service graph derived from the same
// events. All slices are sorted (traces by ID, graph nodes and edges
// by name), so the JSON encoding is byte-stable for a given journal.
type Report struct {
	// EventCount is how many journal events the analysis consumed.
	EventCount int `json:"event_count"`
	// TraceCount is how many distinct traces the journal held.
	TraceCount int            `json:"trace_count"`
	Traces     []TraceInsight `json:"traces"`
	Graph      ServiceGraph   `json:"graph"`
	// Coverage, when set, records that the journal behind this report
	// was tail-sampled: KeptTraces of TotalTraces survived the sampler
	// (docs/telemetry.md). Nil for full-fidelity journals, so reports
	// over unsampled journals keep their exact historical encoding.
	Coverage *Coverage `json:"coverage,omitempty"`
}

// Coverage is the sampled-journal annotation: how many traces the
// report actually saw out of how many the workload produced. Reports
// over a sampled journal are still deterministic — the sampler's keep
// decisions are seeded — but they are partial, and this says by how
// much.
type Coverage struct {
	KeptTraces  int `json:"kept_traces"`
	TotalTraces int `json:"total_traces"`
}

// AnnotateCoverage attaches a sampling-coverage note to the report.
func (r *Report) AnnotateCoverage(kept, total int) {
	r.Coverage = &Coverage{KeptTraces: kept, TotalTraces: total}
}

// Analyze builds a full report from a journal's events (as returned by
// Journal.Events — append order).
func Analyze(evs []events.Event) *Report {
	trees := buildTrees(evs)
	r := &Report{EventCount: len(evs), TraceCount: len(trees)}
	for _, t := range trees {
		r.Traces = append(r.Traces, t.insight())
	}
	sort.Slice(r.Traces, func(i, j int) bool { return r.Traces[i].Trace < r.Traces[j].Trace })
	r.Graph = buildGraph(trees)
	return r
}

// AnalyzeTrace builds the critical-path insight of a single trace from
// its events (as returned by Journal.Trace). It returns the zero
// TraceInsight and false when the events hold no spans.
func AnalyzeTrace(evs []events.Event) (TraceInsight, bool) {
	trees := buildTrees(evs)
	if len(trees) == 0 {
		return TraceInsight{}, false
	}
	return trees[0].insight(), true
}

// Slowest returns the k slowest traces of the report, by total
// normalized duration descending (ties broken by trace ID ascending,
// so the order is deterministic). k <= 0 or k beyond the trace count
// returns everything, re-sorted.
func (r *Report) Slowest(k int) []TraceInsight {
	out := append([]TraceInsight(nil), r.Traces...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Trace < out[j].Trace
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// WriteJSON renders the report as indented JSON (byte-stable for a
// given journal).
func (r *Report) WriteJSON(w io.Writer) error {
	return newIndentEncoder(w).Encode(r)
}

// newIndentEncoder returns the JSON encoder every insight export
// shares (two-space indent), so all byte-stability tests pin one
// encoding.
func newIndentEncoder(w io.Writer) *json.Encoder {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc
}

// CountReport bumps the insight_reports_total counter for one served
// analysis of the given kind (criticalpath, servicegraph, slowest,
// diff, report). Nil-safe like every instrument.
func CountReport(reg *metrics.Registry, kind string) {
	reg.Counter(metrics.Name("insight_reports_total", "kind", kind)).Inc()
}
