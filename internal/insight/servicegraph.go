package insight

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/stats"
)

// GraphNode is one vertex of the service graph: a component of the
// simulated stack at the granularity requests move between them —
// the gateway, the cluster scheduler, one fleet node, one pipeline
// stage, one bus topic, one workflow or step.
type GraphNode struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // gateway, cluster, node, stage, topic, workflow, step, component
	Count int    `json:"count"`
}

// GraphEdge is one directed edge with RED stats: how often requests
// crossed it, how many of those erred, and the latency distribution of
// the downstream span.
type GraphEdge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Count  int    `json:"count"`
	Errors int    `json:"errors"`
	// ErrorMilli is Errors/Count in 1/1000ths.
	ErrorMilli int64 `json:"error_milli"`
	// RateMilli is crossings per 1000 virtual seconds of summed root
	// time — an integer so exports stay byte-stable.
	RateMilli int64         `json:"rate_milli"`
	P50       time.Duration `json:"p50_ns"`
	P99       time.Duration `json:"p99_ns"`

	durs []float64 // downstream span durations (ns); not exported
}

// ServiceGraph is the component graph of one analyzed journal. Nodes
// and edges are sorted by name, so JSON/DOT/Mermaid exports are
// byte-stable.
type ServiceGraph struct {
	// WindowNS is the summed root-span virtual time the edge rates are
	// computed against.
	WindowNS int64       `json:"window_ns"`
	Nodes    []GraphNode `json:"nodes"`
	Edges    []GraphEdge `json:"edges"`
}

// graphNodeName maps a span onto its service-graph vertex.
func graphNodeName(s *span) (name, kind string) {
	switch s.component {
	case "gateway":
		return "gateway", "gateway"
	case "cluster":
		return "cluster", "cluster"
	case "core":
		switch s.name {
		case "invoke", "install":
			if s.node != "" {
				return "node:" + s.node, "node"
			}
			return "core", "node"
		default:
			return "stage:" + s.name, "stage"
		}
	case "workflow":
		switch s.name {
		case "run":
			if wf := s.attrs["workflow"]; wf != "" {
				return "workflow:" + wf, "workflow"
			}
			return "workflow", "workflow"
		case "step":
			if st := s.attrs["step"]; st != "" {
				return "step:" + st, "step"
			}
			return "step", "step"
		default:
			return "workflow:" + s.name, "workflow"
		}
	default:
		return s.component, "component"
	}
}

// buildGraph derives the service graph from reconstructed trace trees:
// span parent→child transitions become edges carrying the child's
// duration, and msgbus produce/consume instants become hops through
// their topic vertices.
func buildGraph(trees []*traceTree) ServiceGraph {
	nodes := map[string]*GraphNode{}
	edges := map[[2]string]*GraphEdge{}
	node := func(name, kind string) *GraphNode {
		n := nodes[name]
		if n == nil {
			n = &GraphNode{Name: name, Kind: kind}
			nodes[name] = n
		}
		return n
	}
	edge := func(from, to string) *GraphEdge {
		key := [2]string{from, to}
		e := edges[key]
		if e == nil {
			e = &GraphEdge{From: from, To: to}
			edges[key] = e
		}
		return e
	}

	var window time.Duration
	for _, t := range trees {
		for _, r := range t.roots {
			window += r.total
		}
		for _, s := range t.order {
			name, kind := graphNodeName(s)
			node(name, kind).Count++
			p := t.spans[s.parent]
			if p == nil || p == s {
				continue
			}
			pname, _ := graphNodeName(p)
			if pname == name {
				continue
			}
			e := edge(pname, name)
			e.Count++
			if s.errMsg != "" {
				e.Errors++
			}
			e.durs = append(e.durs, float64(s.total))
		}
		for _, in := range t.instants {
			if in.component != "msgbus" {
				continue
			}
			topic := in.attrs["topic"]
			if topic == "" {
				continue
			}
			encl := t.spans[in.parent]
			host := "host"
			if encl != nil {
				host, _ = graphNodeName(encl)
			} else {
				node("host", "component")
			}
			tn := node("topic:"+topic, "topic")
			tn.Count++
			switch in.name {
			case "produce", "produce-batch":
				edge(host, tn.Name).Count++
			case "consume", "consume-batch":
				edge(tn.Name, host).Count++
			}
		}
	}

	g := ServiceGraph{WindowNS: int64(window)}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g.Nodes = append(g.Nodes, *nodes[n])
	}
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := edges[k]
		if e.Count > 0 {
			e.ErrorMilli = int64(e.Errors) * 1000 / int64(e.Count)
		}
		if window > 0 {
			e.RateMilli = int64(e.Count) * 1000 * int64(time.Second) / int64(window)
		}
		if len(e.durs) > 0 {
			e.P50 = time.Duration(stats.Percentile(e.durs, 50))
			e.P99 = time.Duration(stats.Percentile(e.durs, 99))
		}
		e.durs = nil
		g.Edges = append(g.Edges, *e)
	}
	return g
}

// WriteDOT renders the graph as Graphviz DOT, nodes and edges in
// sorted order.
func (g ServiceGraph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph insight {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	shapes := map[string]string{
		"gateway": "box", "cluster": "diamond", "node": "box3d",
		"stage": "ellipse", "topic": "cds", "workflow": "folder",
		"step": "component",
	}
	for _, n := range g.Nodes {
		shape := shapes[n.Kind]
		if shape == "" {
			shape = "ellipse"
		}
		fmt.Fprintf(w, "  %q [shape=%s,label=\"%s\\nn=%d\"];\n", n.Name, shape, n.Name, n.Count)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(w, "  %q -> %q [label=\"n=%d err=%d p99=%s\"];\n",
			e.From, e.To, e.Count, e.Errors, e.P99)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteMermaid renders the graph as a Mermaid flowchart (graph LR),
// nodes and edges in sorted order.
func (g ServiceGraph) WriteMermaid(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "graph LR"); err != nil {
		return err
	}
	ids := make(map[string]string, len(g.Nodes))
	for i, n := range g.Nodes {
		id := fmt.Sprintf("n%d", i)
		ids[n.Name] = id
		fmt.Fprintf(w, "  %s[\"%s (n=%d)\"]\n", id, n.Name, n.Count)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(w, "  %s -->|n=%d err=%d p99=%s| %s\n",
			ids[e.From], e.Count, e.Errors, e.P99, ids[e.To])
	}
	return nil
}

// WriteFormat renders the graph in a named format: "json", "dot", or
// "mermaid".
func (g ServiceGraph) WriteFormat(w io.Writer, format string) error {
	switch format {
	case "json":
		enc := newIndentEncoder(w)
		return enc.Encode(g)
	case "dot":
		return g.WriteDOT(w)
	case "mermaid":
		return g.WriteMermaid(w)
	default:
		return fmt.Errorf("insight: unknown graph format %q (want json, dot, or mermaid)", format)
	}
}
