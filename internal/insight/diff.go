package insight

import (
	"io"
	"sort"
	"time"
)

// SiteDelta is one blame site's aggregate change between two reports:
// the summed self time across every trace in each run and their
// difference. Positive Delta means run B spent more time at the site.
type SiteDelta struct {
	Site    string        `json:"site"`
	SelfA   time.Duration `json:"self_a_ns"`
	SelfB   time.Duration `json:"self_b_ns"`
	Delta   time.Duration `json:"delta_ns"`
	CountA  int           `json:"count_a"`
	CountB  int           `json:"count_b"`
	FaultsA int           `json:"faults_a,omitempty"`
	FaultsB int           `json:"faults_b,omitempty"`
}

// EdgeDelta is one service-graph edge's change between two reports.
type EdgeDelta struct {
	From     string        `json:"from"`
	To       string        `json:"to"`
	CountA   int           `json:"count_a"`
	CountB   int           `json:"count_b"`
	ErrorsA  int           `json:"errors_a"`
	ErrorsB  int           `json:"errors_b"`
	P99A     time.Duration `json:"p99_a_ns"`
	P99B     time.Duration `json:"p99_b_ns"`
	P99Delta time.Duration `json:"p99_delta_ns"`
}

// DiffReport attributes the difference between two runs to blame
// sites and graph edges. Sites are ranked by absolute self-time delta
// (largest first), edges by absolute p99 delta, so the top row answers
// "what changed".
type DiffReport struct {
	TracesA int           `json:"traces_a"`
	TracesB int           `json:"traces_b"`
	TotalA  time.Duration `json:"total_a_ns"` // summed trace totals
	TotalB  time.Duration `json:"total_b_ns"`
	Delta   time.Duration `json:"delta_ns"`
	Sites   []SiteDelta   `json:"sites"`
	Edges   []EdgeDelta   `json:"edges"`
}

// Diff compares two reports (A = before/baseline, B = after/current).
func Diff(a, b *Report) *DiffReport {
	d := &DiffReport{TracesA: len(a.Traces), TracesB: len(b.Traces)}
	type siteAgg struct {
		self   time.Duration
		count  int
		faults int
	}
	sum := func(r *Report) (map[string]*siteAgg, time.Duration) {
		m := map[string]*siteAgg{}
		var total time.Duration
		for _, t := range r.Traces {
			total += t.Total
			for _, bl := range t.Blame {
				s := m[bl.Site]
				if s == nil {
					s = &siteAgg{}
					m[bl.Site] = s
				}
				s.self += bl.Self
				s.count += bl.Count
				s.faults += bl.Faults
			}
		}
		return m, total
	}
	sa, totalA := sum(a)
	sb, totalB := sum(b)
	d.TotalA, d.TotalB, d.Delta = totalA, totalB, totalB-totalA

	siteSet := map[string]bool{}
	for s := range sa {
		siteSet[s] = true
	}
	for s := range sb {
		siteSet[s] = true
	}
	sites := make([]string, 0, len(siteSet))
	for s := range siteSet {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, site := range sites {
		va, vb := sa[site], sb[site]
		if va == nil {
			va = &siteAgg{}
		}
		if vb == nil {
			vb = &siteAgg{}
		}
		d.Sites = append(d.Sites, SiteDelta{
			Site: site, SelfA: va.self, SelfB: vb.self, Delta: vb.self - va.self,
			CountA: va.count, CountB: vb.count,
			FaultsA: va.faults, FaultsB: vb.faults,
		})
	}
	sort.SliceStable(d.Sites, func(i, j int) bool {
		di, dj := absDur(d.Sites[i].Delta), absDur(d.Sites[j].Delta)
		if di != dj {
			return di > dj
		}
		return d.Sites[i].Site < d.Sites[j].Site
	})

	type edgeKey struct{ from, to string }
	ea := map[edgeKey]GraphEdge{}
	for _, e := range a.Graph.Edges {
		ea[edgeKey{e.From, e.To}] = e
	}
	eb := map[edgeKey]GraphEdge{}
	for _, e := range b.Graph.Edges {
		eb[edgeKey{e.From, e.To}] = e
	}
	keySet := map[edgeKey]bool{}
	for k := range ea {
		keySet[k] = true
	}
	for k := range eb {
		keySet[k] = true
	}
	keys := make([]edgeKey, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		va, vb := ea[k], eb[k]
		d.Edges = append(d.Edges, EdgeDelta{
			From: k.from, To: k.to,
			CountA: va.Count, CountB: vb.Count,
			ErrorsA: va.Errors, ErrorsB: vb.Errors,
			P99A: va.P99, P99B: vb.P99, P99Delta: vb.P99 - va.P99,
		})
	}
	sort.SliceStable(d.Edges, func(i, j int) bool {
		di, dj := absDur(d.Edges[i].P99Delta), absDur(d.Edges[j].P99Delta)
		if di != dj {
			return di > dj
		}
		if d.Edges[i].From != d.Edges[j].From {
			return d.Edges[i].From < d.Edges[j].From
		}
		return d.Edges[i].To < d.Edges[j].To
	})
	return d
}

// WriteJSON renders the diff as indented JSON.
func (d *DiffReport) WriteJSON(w io.Writer) error {
	return newIndentEncoder(w).Encode(d)
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
