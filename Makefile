GO ?= go

.PHONY: check vet build test race trace-demo mem-demo bench-gate bench-baseline

# check is the tier-1 gate: everything must pass before a merge.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-bearing subsystems — the cluster scheduler, the
# metrics registry, the shared lifecycle pool, the Fireworks invoke
# pipeline, the fault-injection plane, the event journal, the message
# bus, the host memory accountant, the chunked snapshot store, and the
# telemetry sampler/watchdog — additionally run under the race
# detector.
race:
	$(GO) test -race ./internal/cluster/... ./internal/metrics/... ./internal/core/... ./internal/lifecycle/... ./internal/faults/... ./internal/events/... ./internal/msgbus/... ./internal/mem/... ./internal/snapshot/... ./internal/timeseries/... ./internal/workflow/...

# trace-demo runs a faulted fwsim demo, dumps its event journal as
# Chrome trace-event JSON, and sanity-checks that the dump parses and
# carries events (cmd/tracecheck). The artifact is Perfetto-loadable.
trace-demo:
	$(GO) run ./cmd/fwsim -metrics text -nodes 3 -invocations 12 -faults seed=7,rate=0.05 -trace-dump trace-demo.json > /dev/null
	$(GO) run ./cmd/tracecheck trace-demo.json
	rm -f trace-demo.json

# bench-gate runs the hot-path benchmarks and compares them against
# the committed baseline (BENCH_simharness.json), failing on
# regression. CI uses a short benchtime; see docs/benchmarking.md for
# the tolerance policy.
bench-gate:
	$(GO) run ./cmd/benchgate -benchtime 200ms -out bench-fresh.json

# bench-baseline refreshes the committed baseline from a longer run on
# the current machine. Commit the resulting BENCH_simharness.json.
bench-baseline:
	$(GO) run ./cmd/benchgate -write -benchtime 1s -count 2

# mem-demo runs the memory-timeline experiment (Fig-10 methodology on a
# scaled host), writes its CSV artifacts, and sanity-checks them with
# cmd/memcheck: header shape, the mem_used_bytes series, and strictly
# advancing virtual timestamps.
mem-demo:
	mkdir -p mem-demo-artifacts
	$(GO) run ./cmd/fwbench -run memtl -artifacts mem-demo-artifacts
	$(GO) run ./cmd/memcheck mem-demo-artifacts/memory-timeline-fireworks.csv
	$(GO) run ./cmd/memcheck mem-demo-artifacts/memory-timeline-firecracker.csv
