GO ?= go

.PHONY: check vet build test race

# check is the tier-1 gate: everything must pass before a merge.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-bearing subsystems — the cluster scheduler, the
# metrics registry, the shared lifecycle pool, the Fireworks invoke
# pipeline, and the fault-injection plane — additionally run under the
# race detector.
race:
	$(GO) test -race ./internal/cluster/... ./internal/metrics/... ./internal/core/... ./internal/lifecycle/... ./internal/faults/...
