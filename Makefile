GO ?= go

.PHONY: check vet build test race

# check is the tier-1 gate: everything must pass before a merge.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The cluster scheduler and the metrics registry are the two
# concurrency-bearing subsystems; they additionally run under the race
# detector.
race:
	$(GO) test -race ./internal/cluster/... ./internal/metrics/...
