GO ?= go

.PHONY: check vet build test race trace-demo mem-demo insight-demo telem-demo bench-gate bench-baseline

# check is the tier-1 gate: everything must pass before a merge.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-bearing subsystems — the cluster scheduler, the
# metrics registry, the shared lifecycle pool, the Fireworks invoke
# pipeline, the fault-injection plane, the event journal, the message
# bus, the host memory accountant, the chunked snapshot store, and the
# telemetry sampler/watchdog — additionally run under the race
# detector, as does the insight engine (it reads journals and metrics
# registries that other goroutines still write) and the tail sampler
# (it observes journal appends and drops traces concurrently).
race:
	$(GO) test -race ./internal/cluster/... ./internal/metrics/... ./internal/core/... ./internal/lifecycle/... ./internal/faults/... ./internal/events/... ./internal/msgbus/... ./internal/mem/... ./internal/snapshot/... ./internal/timeseries/... ./internal/workflow/... ./internal/insight/... ./internal/telemetry/...

# trace-demo runs a faulted fwsim demo, dumps its event journal as
# Chrome trace-event JSON, and sanity-checks that the dump parses and
# carries events (cmd/tracecheck). The artifact is Perfetto-loadable.
trace-demo:
	$(GO) run ./cmd/fwsim -metrics text -nodes 3 -invocations 12 -faults seed=7,rate=0.05 -trace-dump trace-demo.json > /dev/null
	$(GO) run ./cmd/tracecheck trace-demo.json
	rm -f trace-demo.json

# bench-gate runs the hot-path benchmarks and compares them against
# the committed baseline (BENCH_simharness.json), failing on
# regression. CI uses a short benchtime; see docs/benchmarking.md for
# the tolerance policy.
bench-gate:
	$(GO) run ./cmd/benchgate -benchtime 200ms -out bench-fresh.json

# bench-baseline refreshes the committed baseline from a longer run on
# the current machine. Commit the resulting BENCH_simharness.json.
bench-baseline:
	$(GO) run ./cmd/benchgate -write -benchtime 1s -count 2

# insight-demo replays the chaos storm through the insight experiment,
# writes the report and service-graph artifacts, and fails on any WARN
# shape check (blame attribution, exemplar resolution, same-seed
# byte-identical reports).
insight-demo:
	mkdir -p insight-demo-artifacts
	$(GO) run ./cmd/fwbench -run insight -artifacts insight-demo-artifacts > insight-demo.log || { cat insight-demo.log; rm -f insight-demo.log; exit 1; }
	cat insight-demo.log
	! grep -q '\[WARN' insight-demo.log
	grep -q 'digraph insight' insight-demo-artifacts/insight-servicegraph.dot
	test -s insight-demo-artifacts/insight-report.json
	rm -f insight-demo.log

# telem-demo runs the tail-sampling experiment — the exposed chaos
# storm with the telemetry governor armed — writes the sampled NDJSON
# journal and coverage-annotated insight report, and fails on any WARN
# shape check (>=5x byte reduction, 100% error/fault/DLQ retention,
# layout-invariant and same-seed byte-identical exports).
telem-demo:
	mkdir -p telem-demo-artifacts
	$(GO) run ./cmd/fwbench -run telem -artifacts telem-demo-artifacts > telem-demo.log || { cat telem-demo.log; rm -f telem-demo.log; exit 1; }
	cat telem-demo.log
	! grep -q '\[WARN' telem-demo.log
	test -s telem-demo-artifacts/telem-sampled.ndjson
	test -s telem-demo-artifacts/telem-insight.json
	rm -f telem-demo.log

# mem-demo runs the memory-timeline experiment (Fig-10 methodology on a
# scaled host), writes its CSV artifacts, and sanity-checks them with
# cmd/memcheck: header shape, the mem_used_bytes series, and strictly
# advancing virtual timestamps.
mem-demo:
	mkdir -p mem-demo-artifacts
	$(GO) run ./cmd/fwbench -run memtl -artifacts mem-demo-artifacts
	$(GO) run ./cmd/memcheck mem-demo-artifacts/memory-timeline-fireworks.csv
	$(GO) run ./cmd/memcheck mem-demo-artifacts/memory-timeline-firecracker.csv
