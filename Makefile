GO ?= go

.PHONY: check vet build test race trace-demo

# check is the tier-1 gate: everything must pass before a merge.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-bearing subsystems — the cluster scheduler, the
# metrics registry, the shared lifecycle pool, the Fireworks invoke
# pipeline, the fault-injection plane, and the event journal —
# additionally run under the race detector.
race:
	$(GO) test -race ./internal/cluster/... ./internal/metrics/... ./internal/core/... ./internal/lifecycle/... ./internal/faults/... ./internal/events/...

# trace-demo runs a faulted fwsim demo, dumps its event journal as
# Chrome trace-event JSON, and sanity-checks that the dump parses and
# carries events (cmd/tracecheck). The artifact is Perfetto-loadable.
trace-demo:
	$(GO) run ./cmd/fwsim -metrics text -nodes 3 -invocations 12 -faults seed=7,rate=0.05 -trace-dump trace-demo.json > /dev/null
	$(GO) run ./cmd/tracecheck trace-demo.json
	rm -f trace-demo.json
