// Consolidation: the §5.4 memory-sharing story, hands on. Launches a
// fleet of Fireworks microVMs all resumed from one post-JIT snapshot and
// prints how the copy-on-write sharing shows up in RSS vs PSS, then
// contrasts the host footprint with plain Firecracker VMs running the
// same function.
//
// Run with: go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

const fleet = 50

func main() {
	w := workloads.Fact(runtime.LangNode)
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})

	// --- Fireworks: every instance shares the snapshot CoW. ---
	fwEnv := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(fwEnv, core.Options{RetainInstances: true})
	report, err := fw.Install(w.Function)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-JIT snapshot image: %s\n\n", stats.FormatBytes(report.SnapshotBytes))
	for i := 0; i < fleet; i++ {
		if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	instances := fw.Instances(w.Name)
	sp := instances[0].VM.Space()
	fmt.Printf("fireworks: %d live microVMs\n", len(instances))
	fmt.Printf("  per-VM RSS (what top shows):        %s\n", stats.FormatBytes(sp.RSS()))
	fmt.Printf("  per-VM PSS (what smem shows):       %s\n", stats.FormatBytes(uint64(sp.PSS())))
	fmt.Printf("  per-VM USS (truly private):         %s\n", stats.FormatBytes(sp.USS()))
	fmt.Printf("  host memory for the whole fleet:    %s\n\n", stats.FormatBytes(fwEnv.Mem.Used()))

	// --- Firecracker baseline: independent VMs, nothing shared. ---
	fcEnv := platform.NewEnv(platform.EnvConfig{})
	fc := platform.NewFirecracker(fcEnv, platform.FCNoSnapshot)
	if _, err := fc.Install(w.Function); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < fleet; i++ {
		if _, err := fc.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeCold}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("firecracker: %d live microVMs\n", fcEnv.HV.VMCount())
	fmt.Printf("  host memory for the whole fleet:    %s\n\n", stats.FormatBytes(fcEnv.Mem.Used()))

	ratio := float64(fcEnv.Mem.Used()) / float64(fwEnv.Mem.Used())
	fmt.Printf("memory efficiency at %d VMs: %.1fx (paper: up to 7.3x; grows with fleet size\n", fleet, ratio)
	fmt.Println("and shrinks as long-running guests dirty more pages — run fwbench -run fig10")
	fmt.Println("for the full launch-until-swap sweep reproducing the 565-vs-337 result).")
}
