// Alexa Skills on Fireworks vs OpenWhisk: the ServerlessBench
// application of Figure 8(a)/9(a). A frontend function performs voice
// intent analysis and dispatches, via function chaining, to the fact,
// reminder (CouchDB-backed), or smart-home skill. Fireworks and
// OpenWhisk are the only evaluated platforms able to run chains.
//
// Run with: go run ./examples/alexa
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workloads"
)

var requests = []map[string]any{
	{"text": "alexa, tell me an interesting fact"},
	{"text": "remind me to water the plants", "action": "add", "id": "w1",
		"item": "water plants", "place": "balcony", "url": "https://cal.example/w1"},
	{"text": "remind me what is on my schedule", "action": "list"},
	{"text": "turn on the living room lights", "action": "toggle", "device": "light"},
	{"text": "what is the status of the door and the tv", "action": "status"},
}

func runOn(name string, p platform.Platform) {
	// Install skills before the frontend so install-time priming can
	// exercise the real chain.
	apps := workloads.AlexaSkills()
	for i := len(apps) - 1; i >= 0; i-- {
		if _, err := p.Install(apps[i].Function); err != nil {
			log.Fatalf("%s: install %s: %v", name, apps[i].Name, err)
		}
	}
	fmt.Printf("--- %s ---\n", name)
	for _, req := range requests {
		inv, err := p.Invoke(workloads.NameAlexaFrontend, platform.MustParams(req),
			platform.InvokeOptions{})
		if err != nil {
			log.Fatalf("%s: invoke: %v", name, err)
		}
		fmt.Printf("%-46q -> %s\n", req["text"], truncate(inv.Response.Body, 70))
		fmt.Printf("  start-up %-10v exec %-10v total %v\n",
			inv.Breakdown.Startup(), inv.Breakdown.Exec(), inv.Breakdown.Total())
	}
	fmt.Println()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func main() {
	// Each platform gets its own host environment (fresh database,
	// fresh pools) — same as the paper's per-platform runs.
	runOn("fireworks", core.New(platform.NewEnv(platform.EnvConfig{}), core.Options{}))
	runOn("openwhisk", platform.NewOpenWhisk(platform.NewEnv(platform.EnvConfig{})))
	fmt.Println("Note how Fireworks' per-request latency is flat (always a snapshot")
	fmt.Println("resume) while OpenWhisk pays a cold start the first time each skill")
	fmt.Println("in the chain is reached.")
}
