// Alexa Skills on Fireworks vs OpenWhisk: the ServerlessBench
// application of Figure 8(a)/9(a), expressed as a declarative
// workflow. The alexa-intent classifier names the intent, and the
// workflow DAG's conditional branches route to the fact, reminder
// (CouchDB-backed), or smart-home skill — composition the workflow
// engine owns instead of an imperative invoke() chain. Fireworks and
// OpenWhisk are the only evaluated platforms able to run chains.
//
// Run with: go run ./examples/alexa
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

var requests = []map[string]any{
	{"text": "alexa, tell me an interesting fact"},
	{"text": "remind me to water the plants", "action": "add", "id": "w1",
		"item": "water plants", "place": "balcony", "url": "https://cal.example/w1"},
	{"text": "remind me what is on my schedule", "action": "list"},
	{"text": "turn on the living room lights", "action": "toggle", "device": "light"},
	{"text": "what is the status of the door and the tv", "action": "status"},
}

func runOn(name string, env *platform.Env, p platform.Platform) {
	// Install skills before the classifier so install-time priming can
	// exercise the real functions.
	apps := append(workloads.AlexaSkills(), workloads.WorkflowFunctions()...)
	for i := len(apps) - 1; i >= 0; i-- {
		if _, err := p.Install(apps[i].Function); err != nil {
			log.Fatalf("%s: install %s: %v", name, apps[i].Name, err)
		}
	}
	eng := workflow.New(env.Bus, env.Events, env.Metrics, p, workflow.Options{})
	if err := eng.Register(workloads.AlexaWorkflow()); err != nil {
		log.Fatalf("%s: register: %v", name, err)
	}
	fmt.Printf("--- %s ---\n", name)
	for i, req := range requests {
		run, err := eng.Run("alexa", req, time.Duration(i)*100*time.Millisecond)
		if err != nil || run.Status != workflow.RunCompleted {
			log.Fatalf("%s: run: status %v err %v", name, run.Status, err)
		}
		intent := "?"
		if res, ok := run.Result("intent"); ok {
			if m, ok := res.(map[string]any); ok {
				intent, _ = m["intent"].(string)
			}
		}
		reply := ""
		if res, ok := run.Result(intent); ok {
			reply = fmt.Sprintf("%v", res)
		}
		fmt.Printf("%-46q -> [%s] %s\n", req["text"], intent, truncate(reply, 60))
		fmt.Printf("  start-up %-10v exec %-10v total %v\n",
			run.Invocation.Breakdown.Startup(), run.Invocation.Breakdown.Exec(),
			run.Invocation.Breakdown.Total())
	}
	fmt.Println()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func main() {
	// Each platform gets its own host environment (fresh database,
	// fresh pools) — same as the paper's per-platform runs.
	fwEnv := platform.NewEnv(platform.EnvConfig{})
	runOn("fireworks", fwEnv, core.New(fwEnv, core.Options{}))
	owEnv := platform.NewEnv(platform.EnvConfig{})
	runOn("openwhisk", owEnv, platform.NewOpenWhisk(owEnv))
	fmt.Println("Note how Fireworks' per-request latency is flat (always a snapshot")
	fmt.Println("resume) while OpenWhisk pays a cold start the first time each skill")
	fmt.Println("in the chain is reached.")
}
