// Data analysis on Fireworks: the ServerlessBench application of
// Figure 8(b)/9(b). Wage records flow through a validation/normalize
// function chained to a CouchDB writer; a Cloud trigger subscribed to
// the database's change feed launches the analysis chain (bonuses,
// taxes, per-role statistics) after every insert — exactly the dashed
// box in the paper's figure.
//
// Run with: go run ./examples/dataanalysis
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/couchdb"
	"repro/internal/platform"
	"repro/internal/workloads"
)

var employees = []map[string]any{
	{"name": "ada", "id": "e1", "role": "Engineer", "base": 72000},
	{"name": "grace", "id": "e2", "role": "Manager", "base": 95000},
	{"name": "alan", "id": "e3", "role": "Engineer", "base": 68000},
	{"name": "edsger", "id": "e4", "role": "Analyst", "base": 54000},
}

func main() {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})

	apps := workloads.DataAnalysis()
	for i := len(apps) - 1; i >= 0; i-- {
		if _, err := fw.Install(apps[i].Function); err != nil {
			log.Fatalf("install %s: %v", apps[i].Name, err)
		}
	}

	// The Cloud trigger (Figure 1 / Figure 8(b)): every wage insert
	// fires the analysis chain.
	triggered := 0
	env.Couch.CreateDB("wages").Subscribe(func(c couchdb.Change) {
		if c.Deleted || !strings.HasPrefix(c.ID, "wage-e") {
			return
		}
		triggered++
		inv, err := fw.Invoke(workloads.NameWageAnalyze,
			platform.MustParams(map[string]any{"trigger": c.ID}), platform.InvokeOptions{})
		if err != nil {
			log.Fatalf("triggered analysis: %v", err)
		}
		fmt.Printf("  [trigger] analysis chain after %s: %v end-to-end\n", c.ID, inv.Breakdown.Total())
	})

	for _, e := range employees {
		inv, err := fw.Invoke(workloads.NameWageInsert, platform.MustParams(e), platform.InvokeOptions{})
		if err != nil {
			log.Fatalf("insert: %v", err)
		}
		fmt.Printf("insert %-8s (HTTP %d): %v end-to-end\n", e["name"], inv.Response.Status, inv.Breakdown.Total())
	}

	statsDB, err := env.Couch.DB("wage-stats")
	if err != nil {
		log.Fatal(err)
	}
	doc, err := statsDB.Get("stats-latest")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriggered %d analysis runs; final statistics document:\n", triggered)
	fmt.Printf("  employees analyzed: %v\n", doc["employees"])
	fmt.Printf("  total net payroll:  %v\n", doc["total_net"])
	if byRole, ok := doc["by_role"].(map[string]any); ok {
		for role, v := range byRole {
			fmt.Printf("  %-10s %v\n", role+":", v)
		}
	}
}
