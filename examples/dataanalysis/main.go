// Data analysis on Fireworks: the ServerlessBench application of
// Figure 8(b)/9(b), expressed as declarative workflows. Wage records
// flow through the wage-ingest DAG (validate → persist); a change-feed
// trigger subscribed to the wages database launches the wage-analysis
// DAG (statistics → report) after every insert — exactly the dashed
// box in the paper's figure, now owned by the workflow engine instead
// of hand-wired invoke() chains.
//
// Run with: go run ./examples/dataanalysis
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/couchdb"
	"repro/internal/platform"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

var employees = []map[string]any{
	{"name": "ada", "id": "e1", "role": "Engineer", "base": 72000},
	{"name": "grace", "id": "e2", "role": "Manager", "base": 95000},
	{"name": "alan", "id": "e3", "role": "Engineer", "base": 68000},
	{"name": "edsger", "id": "e4", "role": "Analyst", "base": 54000},
}

func main() {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})

	apps := append(workloads.DataAnalysis(), workloads.WorkflowFunctions()...)
	for i := len(apps) - 1; i >= 0; i-- {
		if _, err := fw.Install(apps[i].Function); err != nil {
			log.Fatalf("install %s: %v", apps[i].Name, err)
		}
	}

	eng := workflow.New(env.Bus, env.Events, env.Metrics, fw, workflow.Options{})
	for _, spec := range []*workflow.Spec{workloads.WageInsertWorkflow(), workloads.WageAnalysisWorkflow()} {
		if err := eng.Register(spec); err != nil {
			log.Fatalf("register %s: %v", spec.Name, err)
		}
	}

	// The Cloud trigger (Figure 1 / Figure 8(b)): every wage insert
	// fires the analysis workflow through the change-feed trigger.
	eng.AddChangeFeed(env.Couch.CreateDB("wages"), "wage-analysis",
		func(c couchdb.Change) bool { return !c.Deleted && strings.HasPrefix(c.ID, "wage-e") },
		func(c couchdb.Change) map[string]any { return map[string]any{"trigger": c.ID} })

	triggered := 0
	for _, e := range employees {
		run, err := eng.Run("wage-ingest", e, 0)
		if err != nil || run.Status != workflow.RunCompleted {
			log.Fatalf("insert %v: status %v err %v", e["name"], run.Status, err)
		}
		fmt.Printf("insert %-8s (workflow %s): %v end-to-end\n",
			e["name"], run.Status, run.Invocation.Breakdown.Total())
		for _, analysis := range eng.Drain(run.Invocation.Clock.Now()) {
			triggered++
			fmt.Printf("  [trigger] analysis workflow after wage-%s: %v end-to-end\n",
				e["id"], analysis.Invocation.Breakdown.Total())
		}
	}

	statsDB, err := env.Couch.DB("wage-stats")
	if err != nil {
		log.Fatal(err)
	}
	doc, err := statsDB.Get("stats-latest")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriggered %d analysis runs; final statistics document:\n", triggered)
	fmt.Printf("  employees analyzed: %v\n", doc["employees"])
	fmt.Printf("  total net payroll:  %v\n", doc["total_net"])
	if byRole, ok := doc["by_role"].(map[string]any); ok {
		for role, v := range byRole {
			fmt.Printf("  %-10s %v\n", role+":", v)
		}
	}
}
