// Cluster: the multi-host extension. A four-node backend fleet runs
// Fireworks on every node; the controller places invocations by
// least-memory, skipping nodes under memory pressure — the elastic
// provisioning story of Figure 1 scaled past one server.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	// Four 32 GiB nodes, least-memory placement.
	c := cluster.New(4, cluster.LeastMemory,
		platform.EnvConfig{MemBytes: 32 << 30},
		func(env *platform.Env) platform.Platform {
			// Retain instances so memory pressure is visible.
			return core.New(env, core.Options{RetainInstances: true})
		})

	w := workloads.Fact(runtime.LangNode)
	if err := c.Install(w.Function); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %s on %d nodes (policy: %s)\n\n", w.Name, len(c.Nodes()), c.Policy())

	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	const total = 120
	for i := 0; i < total; i++ {
		if _, _, err := c.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
			log.Fatalf("invocation %d: %v", i, err)
		}
	}

	fmt.Printf("%-10s %-12s %-10s %-12s %s\n", "node", "invocations", "microVMs", "memory", "swapping")
	for _, s := range c.Stats() {
		fmt.Printf("%-10s %-12d %-10d %-12s %v\n",
			s.Name, s.Invocations, s.MicroVMs, stats.FormatBytes(s.MemUsed), s.Swapping)
	}
	fmt.Printf("\n%d invocations placed across the fleet; every node holds one shared\n", c.TotalInvocations())
	fmt.Println("post-JIT snapshot and its instances CoW-share those pages node-locally.")
}
