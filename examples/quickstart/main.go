// Quickstart: install one serverless function on Fireworks and invoke
// it, printing the latency breakdown. This is the smallest end-to-end
// tour of the public API: build a host Env, create the Framework,
// Install (annotate → boot → JIT → post-JIT snapshot), Invoke (resume
// snapshot → fetch params → run JITted code).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
)

// A user-provided serverless function, as it would be uploaded: plain
// FaaSLang with a main(params) entry. The Fireworks annotator adds the
// @jit decorators and snapshot drivers automatically.
const userFunction = `
// Sum the squares of 1..n.
func sumSquares(n) {
  let total = 0;
  let i = 1;
  while (i <= n) {
    total = total + i * i;
    i = i + 1;
  }
  return total;
}

func main(params) {
  let n = params.n;
  if (n == null) { n = 1000; }
  let result = sumSquares(n);
  http_respond(200, "sumSquares(" + n + ") = " + result);
  return result;
}
`

func main() {
	// One simulated host: 128 GiB of memory, a hypervisor, a message
	// bus, a CouchDB server, and snapshot storage.
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})

	// Install: this boots a microVM, loads the Node.js runtime, runs
	// the function once with default params to force JIT compilation,
	// and captures the post-JIT VM snapshot.
	report, err := fw.Install(platform.Function{
		Name:          "sum-squares",
		Source:        userFunction,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"n": 1000},
	})
	if err != nil {
		log.Fatalf("install: %v", err)
	}
	fmt.Printf("installed %q in %v (virtual time)\n", report.Function, report.Duration)
	fmt.Printf("  post-JIT snapshot: %.0f MiB, JIT-compiled: %v\n\n",
		float64(report.SnapshotBytes)/(1<<20), report.JITCompiled)

	// Invoke: every invocation resumes the snapshot — no boot, no JIT
	// warm-up, no cold/warm distinction.
	for _, n := range []int{10, 100000} {
		inv, err := fw.Invoke("sum-squares",
			platform.MustParams(map[string]any{"n": n}), platform.InvokeOptions{})
		if err != nil {
			log.Fatalf("invoke: %v", err)
		}
		fmt.Printf("invoke n=%-7d -> %s (HTTP %d)\n", n, inv.Response.Body, inv.Response.Status)
		fmt.Printf("  start-up %-10v exec %-10v others %-10v total %v\n",
			inv.Breakdown.Startup(), inv.Breakdown.Exec(),
			inv.Breakdown.Others(), inv.Breakdown.Total())
	}
}
